package ishare

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"fgcs/internal/durable"
	"fgcs/internal/monitor"
	"fgcs/internal/obs"
	"fgcs/internal/trace"
)

// Persister wires a host node's mutable state — the monitor's history log,
// the gateway's idempotency table and the accuracy tracker — onto a
// durable.Store. It sits in the monitor's sink chain: every sample is
// quantized to the WAL's storage precision, appended to the log, and only
// then applied to the live components, so the live state and a replay of
// the log are bit-identical and a restarted node answers QueryTR exactly as
// the pre-crash node did.
//
// Locking: p.mu serializes the sample step (append + apply) against
// snapshots. Submit and resolution records are appended outside p.mu,
// taking only the store's internal append mutex, so the hooks never nest
// component locks inside each other. That is safe against concurrent
// snapshots because Snapshot captures the WAL position BEFORE exporting
// state: a record appended before the captured position belongs to a
// mutation the export already saw (components mutate, then log), and one
// appended after it is replayed on recovery as an idempotent upsert.
type Persister struct {
	st      *durable.Store
	sm      *StateManager
	gw      *Gateway
	tracker *obs.Tracker
	logger  *slog.Logger

	mu    sync.Mutex
	coder durable.SampleCoder
	buf   []byte
}

// nodeSnapMagic frames a host-node snapshot payload.
var nodeSnapMagic = [4]byte{'F', 'G', 'N', 'S'}

// nodeSnapVersion is the host-node snapshot payload version.
const nodeSnapVersion = 1

// NewPersister builds the persistence layer for one host node and replays
// the recovered state into its components: snapshot first, then the WAL
// tail. It installs the gateway submit hook and the tracker resolution hook;
// the caller routes monitor samples through Record (the Persister is the
// monitor sink, wrapping the gateway).
func NewPersister(st *durable.Store, rec *durable.Recovery, sm *StateManager, gw *Gateway, logger *slog.Logger) (*Persister, error) {
	if st == nil || sm == nil || gw == nil {
		return nil, fmt.Errorf("ishare: persister needs store, state manager and gateway")
	}
	if logger != nil {
		logger = logger.With(slog.String("component", "persist"))
	}
	p := &Persister{st: st, sm: sm, gw: gw, tracker: sm.Obs().Tracker, logger: logger}
	if rec != nil {
		if err := p.restore(rec); err != nil {
			return nil, err
		}
	}
	gw.SetSubmitSink(p.appendSubmit)
	p.tracker.SetResolutionSink(p.appendResolution)
	return p, nil
}

// Record implements monitor.Sink: quantize, log, apply. The quantization
// happens before the live components see the sample, which is what makes
// replayed state bit-identical to live state. An append failure is logged
// and the sample still applied — a monitoring sample is never client-
// acknowledged, so availability wins over durability for it.
func (p *Persister) Record(t time.Time, s trace.Sample) {
	t = durable.QuantizeTime(t)
	s = durable.QuantizeSample(s)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf = p.coder.Encode(p.buf[:0], t, s)
	if err := p.st.Append(durable.RecSample, p.buf); err != nil {
		p.warn("sample append failed", slog.String("err", err.Error()))
	}
	p.gw.Record(t, s)
}

// appendSubmit logs one accepted submit (the gateway's submit sink).
func (p *Persister) appendSubmit(key, jobID string) {
	if err := p.st.Append(durable.RecSubmitKey, durable.EncodeSubmitKey(nil, key, jobID)); err != nil {
		p.warn("submit append failed", slog.String("job", jobID), slog.String("err", err.Error()))
	}
}

// appendResolution logs one resolved prediction (the tracker's resolution
// sink). On a host node resolutions only fire inside the sample step, so
// these appends are already serialized against snapshots by p.mu.
func (p *Persister) appendResolution(machine, predictor string, tr float64, survived bool) {
	if err := p.st.Append(durable.RecAccuracy, durable.EncodeAccuracy(nil, machine, predictor, tr, survived)); err != nil {
		p.warn("accuracy append failed", slog.String("err", err.Error()))
	}
}

// Snapshot publishes the node's full state and starts a fresh sample delta
// chain, so replay from the snapshot never needs records before it. The WAL
// position is captured BEFORE the state is exported: a submit record
// appended concurrently (the gateway's sink runs outside p.mu) either
// precedes the captured position — then its mutation is already in the
// export — or lands after it and is replayed on top as an idempotent
// upsert. Sample and resolution records cannot interleave at all: they are
// serialized against this method by p.mu.
func (p *Persister) Snapshot() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	seq, off := p.st.Position()
	payload, err := p.encodeNodeSnapshot()
	if err != nil {
		return err
	}
	if err := p.st.WriteSnapshotAt(seq, off, payload); err != nil {
		return err
	}
	p.coder.Reset()
	return nil
}

// StartSnapshots writes a snapshot every interval until the returned stop
// function is called. Failures are logged and retried next round.
func (p *Persister) StartSnapshots(every time.Duration) (stop func()) {
	if every <= 0 {
		every = 5 * time.Minute
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := p.Snapshot(); err != nil {
					p.warn("periodic snapshot failed", slog.String("err", err.Error()))
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Sync forces the WAL to stable storage (used by weaker fsync policies at
// shutdown).
func (p *Persister) Sync() error { return p.st.Sync() }

// Close flushes and closes the WAL. Call after the monitor has stopped.
func (p *Persister) Close() error { return p.st.Close() }

// Flush writes a final snapshot and closes the store — the clean-shutdown
// path: a node restarted from this state replays zero WAL records.
func (p *Persister) Flush() error {
	if err := p.Snapshot(); err != nil {
		_ = p.st.Close()
		return err
	}
	return p.st.Close()
}

func (p *Persister) warn(msg string, args ...interface{}) {
	if p.logger != nil {
		p.logger.Warn(msg, args...)
	}
}

// restore applies recovered state: the snapshot payload, then the WAL tail
// in order. Unknown record types are skipped with a warning so a newer
// node's log does not brick an older binary.
func (p *Persister) restore(rec *durable.Recovery) error {
	if rec.SnapshotPayload != nil {
		if err := p.decodeNodeSnapshot(rec.SnapshotPayload); err != nil {
			return fmt.Errorf("ishare: node snapshot: %w", err)
		}
	}
	var coder durable.SampleCoder
	for i, r := range rec.Records {
		switch r.Type {
		case durable.RecSample:
			t, s, err := coder.Decode(r.Payload)
			if err != nil {
				return fmt.Errorf("ishare: replay record %d: %w", i, err)
			}
			p.sm.RestoreSample(t, s)
		case durable.RecSubmitKey:
			key, jobID, err := durable.DecodeSubmitKey(r.Payload)
			if err != nil {
				return fmt.Errorf("ishare: replay record %d: %w", i, err)
			}
			p.gw.RestoreSubmitKey(key, jobID)
		case durable.RecAccuracy:
			machine, predictor, tr, survived, err := durable.DecodeAccuracy(r.Payload)
			if err != nil {
				return fmt.Errorf("ishare: replay record %d: %w", i, err)
			}
			p.tracker.RestoreResolution(machine, predictor, tr, survived)
		default:
			p.warn("skipping unknown WAL record type", slog.Int("type", int(r.Type)))
		}
	}
	return nil
}

// encodeNodeSnapshot serializes the node state. Callers hold p.mu; the
// component exports take their own locks. The output is deterministic for
// a given state (sorted submit keys), which the crash harness relies on.
func (p *Persister) encodeNodeSnapshot() ([]byte, error) {
	machine, last, recent := p.sm.ExportHistory()
	var hist bytes.Buffer
	if err := trace.WriteBinary(&hist, &trace.Dataset{Machines: []*trace.Machine{machine}}); err != nil {
		return nil, err
	}
	buf := append([]byte(nil), nodeSnapMagic[:]...)
	buf = append(buf, nodeSnapVersion)
	buf = binary.AppendUvarint(buf, uint64(hist.Len()))
	buf = append(buf, hist.Bytes()...)
	buf = binary.AppendVarint(buf, timeToMs(last))
	buf = binary.AppendUvarint(buf, uint64(len(recent)))
	for _, s := range recent {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.CPU))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.FreeMemMB))
		if s.Up {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	submitted, nextID := p.gw.ExportSubmitted()
	keys := make([]string, 0, len(submitted))
	for k := range submitted {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = appendSnapString(buf, k)
		buf = appendSnapString(buf, submitted[k])
	}
	buf = binary.AppendUvarint(buf, uint64(nextID))
	blob := p.tracker.ExportBinary()
	buf = binary.AppendUvarint(buf, uint64(len(blob)))
	buf = append(buf, blob...)
	return buf, nil
}

// decodeNodeSnapshot installs a recovered snapshot payload into the
// components.
func (p *Persister) decodeNodeSnapshot(data []byte) error {
	if len(data) < 5 || [4]byte(data[:4]) != nodeSnapMagic {
		return fmt.Errorf("bad magic")
	}
	if data[4] != nodeSnapVersion {
		return fmt.Errorf("version %d", data[4])
	}
	rest := data[5:]
	hlen, n := binary.Uvarint(rest)
	if n <= 0 || hlen > uint64(len(rest)-n) {
		return fmt.Errorf("malformed history length")
	}
	rest = rest[n:]
	ds, err := trace.ReadBinary(bytes.NewReader(rest[:hlen]))
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if len(ds.Machines) != 1 {
		return fmt.Errorf("history carries %d machines", len(ds.Machines))
	}
	rest = rest[hlen:]
	lastMs, n := binary.Varint(rest)
	if n <= 0 {
		return fmt.Errorf("malformed last-sample time")
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > uint64(len(rest)-n)/17 {
		return fmt.Errorf("malformed recent-ring count")
	}
	rest = rest[n:]
	recent := make([]trace.Sample, 0, count)
	for i := uint64(0); i < count; i++ {
		s := trace.Sample{
			CPU:       math.Float64frombits(binary.LittleEndian.Uint64(rest)),
			FreeMemMB: math.Float64frombits(binary.LittleEndian.Uint64(rest[8:])),
			Up:        rest[16] == 1,
		}
		rest = rest[17:]
		recent = append(recent, s)
	}
	nkeys, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("malformed submit-key count")
	}
	rest = rest[n:]
	submitted := make(map[string]string, nkeys)
	for i := uint64(0); i < nkeys; i++ {
		var k, v string
		if k, rest, err = readSnapString(rest); err != nil {
			return err
		}
		if v, rest, err = readSnapString(rest); err != nil {
			return err
		}
		submitted[k] = v
	}
	nextID, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("malformed next job id")
	}
	rest = rest[n:]
	blen, n := binary.Uvarint(rest)
	if n <= 0 || blen != uint64(len(rest)-n) {
		return fmt.Errorf("malformed tracker blob length")
	}
	blob := rest[n:]

	if err := p.sm.RestoreHistory(ds.Machines[0], msToTime(lastMs), recent); err != nil {
		return err
	}
	p.gw.RestoreSubmitted(submitted, int(nextID))
	if err := p.tracker.RestoreBinary(blob); err != nil {
		return err
	}
	return nil
}

// timeToMs maps a timestamp to unix milliseconds, keeping the zero time at
// zero (unix ms of the zero time is a large negative number, not a useful
// sentinel).
func timeToMs(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// msToTime is the inverse of timeToMs.
func msToTime(ms int64) time.Time {
	if ms == 0 {
		return time.Time{}
	}
	return time.UnixMilli(ms).UTC()
}

func appendSnapString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readSnapString(p []byte) (string, []byte, error) {
	n, vn := binary.Uvarint(p)
	if vn <= 0 || n > uint64(len(p)-vn) {
		return "", nil, fmt.Errorf("malformed string")
	}
	return string(p[vn : vn+int(n)]), p[vn+int(n):], nil
}

// RegState is the registry-shaped surface the RegPersister restores into:
// both the standalone Registry and a federation peer's shard implement it.
type RegState interface {
	// SetSink installs the persistence hook for entry changes.
	SetSink(fn func(e RegEntry, removed bool))
	// Export snapshots every entry for durable storage.
	Export() []RegEntry
	// Restore upserts recovered entries without firing the sink.
	Restore(entries []RegEntry)
	// RestoreRemove replays a logged removal without firing the sink.
	RestoreRemove(machine string)
}

// regSnapMagic frames a registry snapshot payload.
var regSnapMagic = [4]byte{'F', 'G', 'R', 'S'}

// regSnapVersion is the registry snapshot payload version.
const regSnapVersion = 1

// RegPersister wires a registry-shaped component (standalone Registry or a
// federation peer's shard) onto a durable.Store: entry upserts and removals
// append WAL records, and Snapshot publishes the full entry set. Expiries
// are persisted as absolute deadlines, so a restart does not extend TTLs.
type RegPersister struct {
	st     *durable.Store
	reg    RegState
	logger *slog.Logger
}

// NewRegPersister restores recovered state into reg (snapshot, then WAL
// tail) and installs its persistence sink.
func NewRegPersister(st *durable.Store, rec *durable.Recovery, reg RegState, logger *slog.Logger) (*RegPersister, error) {
	if st == nil || reg == nil {
		return nil, fmt.Errorf("ishare: reg persister needs store and registry")
	}
	if logger != nil {
		logger = logger.With(slog.String("component", "persist"))
	}
	rp := &RegPersister{st: st, reg: reg, logger: logger}
	if rec != nil {
		if rec.SnapshotPayload != nil {
			entries, err := decodeRegSnapshot(rec.SnapshotPayload)
			if err != nil {
				return nil, fmt.Errorf("ishare: registry snapshot: %w", err)
			}
			reg.Restore(entries)
		}
		for i, r := range rec.Records {
			switch r.Type {
			case durable.RecRegister:
				machine, addr, expMs, err := durable.DecodeRegister(r.Payload)
				if err != nil {
					return nil, fmt.Errorf("ishare: replay record %d: %w", i, err)
				}
				reg.Restore([]RegEntry{{Machine: machine, Addr: addr, Expires: msToTime(expMs)}})
			case durable.RecUnregister:
				machine, err := durable.DecodeUnregister(r.Payload)
				if err != nil {
					return nil, fmt.Errorf("ishare: replay record %d: %w", i, err)
				}
				reg.RestoreRemove(machine)
			default:
				if logger != nil {
					logger.Warn("skipping unknown WAL record type", slog.Int("type", int(r.Type)))
				}
			}
		}
	}
	reg.SetSink(rp.sink)
	return rp, nil
}

// sink appends one entry change to the WAL.
func (rp *RegPersister) sink(e RegEntry, removed bool) {
	var err error
	if removed {
		err = rp.st.Append(durable.RecUnregister, durable.EncodeUnregister(nil, e.Machine))
	} else {
		err = rp.st.Append(durable.RecRegister, durable.EncodeRegister(nil, e.Machine, e.Addr, timeToMs(e.Expires)))
	}
	if err != nil && rp.logger != nil {
		rp.logger.Warn("registry append failed", slog.String("machine", e.Machine), slog.String("err", err.Error()))
	}
}

// Snapshot publishes the full entry set. The WAL position is captured
// BEFORE Export: an entry record appended concurrently (the registry sinks
// run outside the component lock) either precedes the position and is
// already in the export, or lands after it and is replayed on recovery as
// an idempotent upsert.
func (rp *RegPersister) Snapshot() error {
	seq, off := rp.st.Position()
	return rp.st.WriteSnapshotAt(seq, off, encodeRegSnapshot(rp.reg.Export()))
}

// StartSnapshots writes a snapshot every interval until the returned stop
// function is called.
func (rp *RegPersister) StartSnapshots(every time.Duration) (stop func()) {
	if every <= 0 {
		every = 5 * time.Minute
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := rp.Snapshot(); err != nil && rp.logger != nil {
					rp.logger.Warn("periodic snapshot failed", slog.String("err", err.Error()))
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Flush writes a final snapshot and closes the store (clean shutdown).
func (rp *RegPersister) Flush() error {
	if err := rp.Snapshot(); err != nil {
		_ = rp.st.Close()
		return err
	}
	return rp.st.Close()
}

// Close closes the store without a final snapshot.
func (rp *RegPersister) Close() error { return rp.st.Close() }

// encodeRegSnapshot serializes a sorted entry set (Export sorts).
func encodeRegSnapshot(entries []RegEntry) []byte {
	buf := append([]byte(nil), regSnapMagic[:]...)
	buf = append(buf, regSnapVersion)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = durable.EncodeRegister(buf, e.Machine, e.Addr, timeToMs(e.Expires))
	}
	return buf
}

// decodeRegSnapshot parses a registry snapshot payload.
func decodeRegSnapshot(data []byte) ([]RegEntry, error) {
	if len(data) < 5 || [4]byte(data[:4]) != regSnapMagic {
		return nil, fmt.Errorf("bad magic")
	}
	if data[4] != regSnapVersion {
		return nil, fmt.Errorf("version %d", data[4])
	}
	rest := data[5:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > uint64(len(rest)-n) {
		return nil, fmt.Errorf("malformed entry count")
	}
	rest = rest[n:]
	entries := make([]RegEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		var machine, addr string
		var err error
		if machine, rest, err = readSnapString(rest); err != nil {
			return nil, err
		}
		if addr, rest, err = readSnapString(rest); err != nil {
			return nil, err
		}
		expMs, vn := binary.Varint(rest)
		if vn <= 0 {
			return nil, fmt.Errorf("malformed expiry")
		}
		rest = rest[vn:]
		entries = append(entries, RegEntry{Machine: machine, Addr: addr, Expires: msToTime(expMs)})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("trailing bytes")
	}
	return entries, nil
}

// Assert the sink chain shapes at compile time.
var (
	_ monitor.Sink = (*Persister)(nil)
	_ RegState     = (*Registry)(nil)
	_ RegState     = (*FedGateway)(nil)
)
