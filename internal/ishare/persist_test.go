package ishare

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/durable"
	"fgcs/internal/rng"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
)

// persistStoreCfg keeps segments small so even short workloads rotate.
func persistStoreCfg(fs durable.FS) durable.Config {
	return durable.Config{FS: fs, SegmentBytes: 1024, KeepSnapshots: 2, Sync: durable.SyncAlways}
}

// newDurableNode builds a host node over an already-opened store.
func newDurableNode(t *testing.T, st *durable.Store, rec *durable.Recovery, clock simclock.Clock, preloaded *trace.Machine) *HostNode {
	t.Helper()
	n, err := NewHostNode(NodeConfig{
		MachineID:       "lab-01",
		Cfg:             avail.DefaultConfig(),
		Period:          period,
		Clock:           clock,
		Preloaded:       preloaded,
		Durable:         st,
		DurableRecovery: rec,
	}, staticSource{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// persistSample derives a deterministic sample from the stream: mixed load
// levels with occasional downtime, so the recovered state machine and TR
// kernels are non-trivial.
func persistSample(r *rng.Stream) trace.Sample {
	v := r.Uint64()
	s := trace.Sample{
		CPU:       float64(v%10000) / 100.0,
		FreeMemMB: 100 + float64((v>>16)%4096)/16.0,
		Up:        v%23 != 0,
	}
	if !s.Up {
		s.CPU, s.FreeMemMB = 0, 0
	}
	return s
}

// queryAnswer strips the cache counters (which depend on query order, not
// state) from a QueryTR response.
type queryAnswer struct {
	TR      float64
	Windows int
	State   string
}

func askTR(t *testing.T, n *HostNode, length float64) queryAnswer {
	t.Helper()
	resp, err := n.Gateway.QueryTR(context.Background(), QueryTRReq{LengthSeconds: length, GuestMemMB: 100})
	if err != nil {
		t.Fatal(err)
	}
	return queryAnswer{TR: resp.TR, Windows: resp.HistoryWindows, State: resp.CurrentState}
}

// TestPersisterCleanShutdownZeroReplay is the graceful-shutdown contract: a
// node that flushed (final snapshot + close) restarts with zero WAL records
// to replay and answers QueryTR exactly as before, and a retried submit
// dedups to the pre-restart job ID.
func TestPersisterCleanShutdownZeroReplay(t *testing.T) {
	fs := durable.NewMemFS()
	start := time.Date(2005, 9, 2, 8, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(start.Add(time.Hour))
	pre := historyMachine("lab-01", 11, 9)

	st, rec, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotPayload != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(rec.Records))
	}
	n := newDurableNode(t, st, rec, clock, pre)
	sub, err := n.Gateway.Submit(context.Background(), SubmitReq{Name: "j", WorkSeconds: 3600, MemMB: 50, IdempotencyKey: "retry-1"})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(41)
	tt := start
	for i := 0; i < 150; i++ {
		n.Persist.Record(tt, persistSample(r))
		tt = tt.Add(period)
	}
	before := askTR(t, n, 2*3600)
	beforeAcc := n.Obs().Tracker.ExportBinary()
	if err := n.Persist.Flush(); err != nil {
		t.Fatal(err)
	}

	st2, rec2, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	if rec2.SnapshotPayload == nil {
		t.Fatal("no snapshot after clean shutdown")
	}
	if len(rec2.Records) != 0 {
		t.Fatalf("clean shutdown left %d WAL records to replay", len(rec2.Records))
	}
	// Preloaded history is the trace file's job (ishared -preload), not the
	// WAL's: the durable layer persists only the live session on top of it.
	n2 := newDurableNode(t, st2, rec2, clock, pre)
	if after := askTR(t, n2, 2*3600); after != before {
		t.Fatalf("QueryTR after restart = %+v, want %+v", after, before)
	}
	if afterAcc := n2.Obs().Tracker.ExportBinary(); !bytes.Equal(afterAcc, beforeAcc) {
		t.Fatal("accuracy tracker state diverged across clean restart")
	}
	// The retried submit is recognized even though the job object died with
	// the process.
	sub2, err := n2.Gateway.Submit(context.Background(), SubmitReq{Name: "j", WorkSeconds: 3600, MemMB: 50, IdempotencyKey: "retry-1"})
	if err != nil {
		t.Fatal(err)
	}
	if sub2.JobID != sub.JobID {
		t.Fatalf("replayed submit job = %s, want %s", sub2.JobID, sub.JobID)
	}
	// A genuinely new submit must not reuse the old job's ID.
	sub3, err := n2.Gateway.Submit(context.Background(), SubmitReq{Name: "k", WorkSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if sub3.JobID == sub.JobID {
		t.Fatalf("fresh submit reused job ID %s", sub.JobID)
	}
	if err := n2.Persist.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPersisterWALReplayOnly restarts from a dirty shutdown (no final
// snapshot): all state comes from WAL replay and must still answer QueryTR
// identically.
func TestPersisterWALReplayOnly(t *testing.T) {
	fs := durable.NewMemFS()
	start := time.Date(2005, 9, 2, 8, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(start.Add(time.Hour))
	pre := historyMachine("lab-01", 11, 9)

	st, rec, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	n := newDurableNode(t, st, rec, clock, pre)
	r := rng.New(42)
	tt := start
	for i := 0; i < 120; i++ {
		n.Persist.Record(tt, persistSample(r))
		tt = tt.Add(period)
	}
	before := askTR(t, n, 2*3600)
	// Close without snapshot: everything must come back from the log.
	if err := n.Persist.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) == 0 {
		t.Fatal("dirty shutdown should leave WAL records")
	}
	// The WAL holds quantized samples, but not the preloaded history: that
	// comes from the node's own boot path, exactly as ishared reloads its
	// trace file.
	n2 := newDurableNode(t, st2, rec2, clock, pre)
	if after := askTR(t, n2, 2*3600); after != before {
		t.Fatalf("QueryTR after WAL replay = %+v, want %+v", after, before)
	}
	if err := n2.Persist.Close(); err != nil {
		t.Fatal(err)
	}
}

// persistCrashWorkload drives a node over the given FS, recording every
// applied (already quantized) sample. Append failures after the injected
// crash are ignored, exactly as a real node keeps serving when its disk
// dies.
func persistCrashWorkload(t *testing.T, fs durable.FS, seed uint64, pre *trace.Machine, start time.Time, clock simclock.Clock, nSamples int) []trace.Sample {
	t.Helper()
	st, rec, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	n := newDurableNode(t, st, rec, clock, pre)
	r := rng.New(seed)
	applied := make([]trace.Sample, 0, nSamples)
	tt := start
	for i := 0; i < nSamples; i++ {
		s := durable.QuantizeSample(persistSample(r))
		applied = append(applied, s)
		n.Persist.Record(tt, s)
		tt = tt.Add(period)
		if (i+1)%40 == 0 {
			_ = n.Persist.Snapshot() // fails after the crash point; ignored
		}
	}
	_ = n.Persist.Close()
	return applied
}

// TestPersisterCrashQueryTREquality is the node-level kill-anywhere
// property: for seeded crash offsets, a node restarted from the surviving
// bytes answers QueryTR exactly like a fresh node fed the recovered prefix
// of samples. The recovered prefix length is derived from the last replayed
// sample's timestamp.
func TestPersisterCrashQueryTREquality(t *testing.T) {
	const nSamples = 160
	const seed = 7
	start := time.Date(2005, 9, 2, 8, 0, 0, 0, time.UTC)
	qnow := start.Add(nSamples * period)
	pre := historyMachine("lab-01", 11, 9)

	// Probe run: measure the total bytes a crash-free workload writes.
	probe := durable.NewCrashFS(durable.NewMemFS(), -1)
	persistCrashWorkload(t, probe, seed, pre, start, simclock.NewVirtual(qnow), nSamples)
	total := probe.BytesWritten()
	if total == 0 {
		t.Fatal("probe run wrote nothing")
	}

	kills := rng.New(seed).Split("node-killpoints")
	for k := 0; k < 14; k++ {
		killAt := int64(kills.Uint64() % uint64(total))
		mem := durable.NewMemFS()
		crash := durable.NewCrashFS(mem, killAt)
		applied := persistCrashWorkload(t, crash, seed, pre, start, simclock.NewVirtual(qnow), nSamples)
		if !crash.Crashed() {
			t.Fatalf("killAt=%d: workload never hit the crash point", killAt)
		}

		// Restart from the surviving bytes.
		st, rec, err := durable.Open(persistStoreCfg(mem))
		if err != nil {
			t.Fatalf("killAt=%d: recovery refused: %v", killAt, err)
		}
		n := newDurableNode(t, st, rec, simclock.NewVirtual(qnow), pre)

		// How many samples made it to stable storage? The last recovered
		// sample's timestamp pins the prefix length exactly.
		_, last, _ := n.SM.ExportHistory()
		prefix := 0
		if !last.IsZero() && !last.Before(start) {
			prefix = int(last.Sub(start)/period) + 1
		}
		if prefix > len(applied) {
			t.Fatalf("killAt=%d: recovered %d samples, only %d were applied", killAt, prefix, len(applied))
		}

		// Oracle: a store-less node fed the recovered prefix directly.
		oracle := testNode(t, simclock.NewVirtual(qnow), pre.Clone())
		tt := start
		for _, s := range applied[:prefix] {
			oracle.Gateway.Record(durable.QuantizeTime(tt), s)
			tt = tt.Add(period)
		}
		for _, length := range []float64{1800, 2 * 3600} {
			got := askTR(t, n, length)
			want := askTR(t, oracle, length)
			if got != want {
				t.Fatalf("killAt=%d prefix=%d length=%v: QueryTR = %+v, oracle %+v",
					killAt, prefix, length, got, want)
			}
		}
		if err := n.Persist.Close(); err != nil {
			t.Fatalf("killAt=%d: close after recovery: %v", killAt, err)
		}
	}
}

// raceRegState wraps a RegState so a test can run code at the worst possible
// moment: after a snapshot exported the entry set but before it is written.
type raceRegState struct {
	RegState
	onExport func()
}

func (r *raceRegState) Export() []RegEntry {
	e := r.RegState.Export()
	if r.onExport != nil {
		r.onExport()
	}
	return e
}

// TestRegPersisterSnapshotExportRace is the deterministic regression test
// for the lost-update race between state export and WAL position capture:
// the registry sink appends its record after releasing the registry lock,
// so a registration landing between the snapshot's export and its write
// used to append before the recorded store position — exported state
// without the entry, WAL offset past its record — and the acknowledged
// registration silently vanished on recovery. The position must be captured
// before the export, making the in-flight record part of the replayed tail.
func TestRegPersisterSnapshotExportRace(t *testing.T) {
	fs := durable.NewMemFS()
	clock := simclock.NewVirtual(monday)
	st, rec, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistryClock(clock)
	wrapped := &raceRegState{RegState: reg}
	rp, err := NewRegPersister(st, rec, wrapped, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Resource{MachineID: "m-pre", Addr: "a:1"}); err != nil {
		t.Fatal(err)
	}
	// The interleaving under test: the registration (mutation + WAL append)
	// completes between the snapshot's Export and its WriteSnapshot call.
	wrapped.onExport = func() {
		wrapped.onExport = nil
		if err := reg.Register(Resource{MachineID: "m-inflight", Addr: "b:2"}); err != nil {
			t.Errorf("in-flight register: %v", err)
		}
	}
	if err := rp.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := rp.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	reg2 := NewRegistryClock(clock)
	rp2, err := NewRegPersister(st2, rec2, reg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp2.Close()
	got := make(map[string]bool)
	for _, e := range reg2.Export() {
		got[e.Machine] = true
	}
	if !got["m-pre"] || !got["m-inflight"] {
		t.Fatalf("acknowledged registration lost across restart: %v", got)
	}
}

// TestRegPersisterSnapshotChurn hammers concurrent registrations against a
// snapshot loop and requires every acknowledged registration to survive a
// restart — the probabilistic companion to the deterministic export-race
// test above, covering interleavings the wrapper cannot stage.
func TestRegPersisterSnapshotChurn(t *testing.T) {
	fs := durable.NewMemFS()
	clock := simclock.NewVirtual(monday)
	st, rec, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistryClock(clock)
	rp, err := NewRegPersister(st, rec, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := rp.Snapshot(); err != nil {
				t.Errorf("snapshot during churn: %v", err)
				return
			}
		}
	}()
	const n = 300
	for i := 0; i < n; i++ {
		res := Resource{MachineID: fmt.Sprintf("m-%03d", i), Addr: fmt.Sprintf("10.0.0.%d:7", i%250)}
		if err := reg.Register(res); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := rp.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatalf("recovery after churn: %v", err)
	}
	reg2 := NewRegistryClock(clock)
	rp2, err := NewRegPersister(st2, rec2, reg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp2.Close()
	got := make(map[string]bool)
	for _, e := range reg2.Export() {
		got[e.Machine] = true
	}
	for i := 0; i < n; i++ {
		if m := fmt.Sprintf("m-%03d", i); !got[m] {
			t.Fatalf("acknowledged registration %s lost across restart", m)
		}
	}
}

// TestRegPersisterRoundTrip covers the registry durability path: snapshot +
// WAL replay reconstruct the entry set, absolute expiries survive, and a
// logged unregister stays gone.
func TestRegPersisterRoundTrip(t *testing.T) {
	fs := durable.NewMemFS()
	clock := simclock.NewVirtual(monday)
	st, rec, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistryClock(clock)
	rp, err := NewRegPersister(st, rec, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Resource{MachineID: "m-a", Addr: "a:1"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterTTL(Resource{MachineID: "m-b", Addr: "b:2"}, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := rp.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot churn lands in the WAL tail.
	if err := reg.Register(Resource{MachineID: "m-c", Addr: "c:3"}); err != nil {
		t.Fatal(err)
	}
	reg.Unregister("m-a")
	want := reg.Export()
	if err := rp.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	if rec2.SnapshotPayload == nil || len(rec2.Records) == 0 {
		t.Fatalf("recovery shape: snapshot=%v records=%d", rec2.SnapshotPayload != nil, len(rec2.Records))
	}
	reg2 := NewRegistryClock(clock)
	rp2, err := NewRegPersister(st2, rec2, reg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := reg2.Export()
	if len(got) != len(want) {
		t.Fatalf("restored %d entries, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The TTL deadline is absolute: advancing past it expires the restored
	// entry without any re-registration.
	clock.Advance(2 * time.Hour)
	for _, res := range reg2.Resources() {
		if res.MachineID == "m-b" {
			t.Fatal("expired TTL entry still discoverable after restore")
		}
	}
	if err := rp2.Flush(); err != nil {
		t.Fatal(err)
	}

	// Third generation boots from the Flush snapshot alone.
	st3, rec3, err := durable.Open(persistStoreCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Records) != 0 {
		t.Fatalf("clean registry shutdown left %d WAL records", len(rec3.Records))
	}
	reg3 := NewRegistryClock(clock)
	if _, err := NewRegPersister(st3, rec3, reg3, nil); err != nil {
		t.Fatal(err)
	}
	if len(reg3.Export()) != len(want) {
		t.Fatalf("third generation entries = %+v", reg3.Export())
	}
}
