package ishare

import (
	"testing"
	"time"

	"fgcs/internal/obs"
)

// feedOutcomes records and resolves n predictions per listed predictor on
// one machine: pred maps predictor name to the TR it keeps issuing, and
// survive is the observed outcome. Each round is resolved immediately by an
// observation past the window deadline, so rolling scores advance by exactly
// n entries per predictor.
func feedOutcomes(tr *obs.Tracker, machine string, preds map[string]float64, survive bool, n int, at time.Time) time.Time {
	for i := 0; i < n; i++ {
		start := at
		for name, p := range preds {
			tr.RecordPrediction(machine, name, p, start, time.Minute)
		}
		at = at.Add(2 * time.Minute)
		tr.Observe(machine, at, survive)
	}
	return at
}

// TestRouterFallbackAndSwitch walks the router through its lifecycle on one
// machine: fallback while scores are thin, hysteresis holding the incumbent
// until the dwell elapses, then a switch to a strictly better challenger.
func TestRouterFallbackAndSwitch(t *testing.T) {
	tracker := obs.NewTracker()
	r := NewRouter(tracker, RouterConfig{
		Predictors: []string{"SMP", "FFT"},
		MinSamples: 4,
		MinDwell:   16,
		Margin:     0.05,
	})

	// Thin scores: the fallback serves.
	if got := r.Route("m1"); got != "SMP" {
		t.Fatalf("cold route = %q, want fallback SMP", got)
	}

	// FFT perfectly calibrated, SMP badly wrong: windows survive, FFT said
	// 1.0, SMP said 0.1. Brier(FFT)=0, Brier(SMP)=0.81.
	at := time.Date(2005, 8, 22, 8, 0, 0, 0, time.UTC)
	at = feedOutcomes(tracker, "m1", map[string]float64{"SMP": 0.1, "FFT": 1.0}, true, 4, at)

	// 8 resolved outcomes total (4 per predictor) — below the 16 dwell, so
	// the incumbent holds even though the challenger is clearly better.
	if got := r.Route("m1"); got != "SMP" {
		t.Fatalf("route before dwell = %q, want SMP held by hysteresis", got)
	}

	feedOutcomes(tracker, "m1", map[string]float64{"SMP": 0.1, "FFT": 1.0}, true, 4, at)
	// 16 resolved: dwell satisfied, FFT beats SMP by far more than the
	// margin, so the router switches.
	if got := r.Route("m1"); got != "FFT" {
		t.Fatalf("route after dwell = %q, want FFT", got)
	}
	snap := r.Snapshot()
	if snap.Switches != 1 {
		t.Fatalf("switches = %d, want 1", snap.Switches)
	}
	if snap.Machines != 1 {
		t.Fatalf("routed machines = %d, want 1", snap.Machines)
	}
	if snap.Served["SMP"] != 2 || snap.Served["FFT"] != 1 {
		t.Fatalf("served = %v, want SMP=2 FFT=1", snap.Served)
	}
}

// TestRouterMarginHoldsIncumbent pins the margin rule: a challenger that is
// better but not by the configured margin must not unseat the incumbent.
func TestRouterMarginHoldsIncumbent(t *testing.T) {
	tracker := obs.NewTracker()
	r := NewRouter(tracker, RouterConfig{
		Predictors: []string{"FFT", "SMP"},
		MinSamples: 4,
		MinDwell:   4,
		Margin:     0.25,
	})
	at := time.Date(2005, 8, 22, 8, 0, 0, 0, time.UTC)
	// Both predict well; FFT slightly better (Brier 0.01 vs 0.04) — inside
	// the 0.25 margin once SMP is incumbent.
	feedOutcomes(tracker, "m1", map[string]float64{"SMP": 0.8, "FFT": 0.9}, true, 8, at)
	if got := r.Route("m1"); got != "SMP" {
		t.Fatalf("route = %q, want incumbent SMP held by margin", got)
	}
	if s := r.Snapshot(); s.Switches != 0 {
		t.Fatalf("switches = %d, want 0", s.Switches)
	}
}

// TestRouterDeterministic replays identical tracker histories through two
// independent routers: the decision sequences must match exactly — the
// property the fleetsim transcript hash pins at scale. The tracker is only
// fed between routing calls, mirroring the sim's feed-then-query phases.
func TestRouterDeterministic(t *testing.T) {
	build := func() (*obs.Tracker, *Router) {
		tracker := obs.NewTracker()
		return tracker, NewRouter(tracker, RouterConfig{MinSamples: 4, MinDwell: 8})
	}
	tr1, r1 := build()
	tr2, r2 := build()

	machines := []string{"m0", "m1", "m2"}
	at := time.Date(2005, 8, 22, 8, 0, 0, 0, time.UTC)
	var decisions1, decisions2 []string
	for round := 0; round < 6; round++ {
		// Alternate which predictor is calibrated, per machine.
		for mi, m := range machines {
			good := (round+mi)%2 == 0
			preds := map[string]float64{"SMP": 0.2, "FFT": 0.9, "PCT": 0.5}
			if !good {
				preds = map[string]float64{"SMP": 0.9, "FFT": 0.1, "PCT": 0.5}
			}
			feedOutcomes(tr1, m, preds, true, 3, at)
			feedOutcomes(tr2, m, preds, true, 3, at)
		}
		at = at.Add(time.Hour)
		for _, m := range machines {
			for k := 0; k < 2; k++ {
				decisions1 = append(decisions1, r1.Route(m))
				decisions2 = append(decisions2, r2.Route(m))
			}
		}
	}
	if len(decisions1) != len(decisions2) {
		t.Fatalf("decision counts differ: %d vs %d", len(decisions1), len(decisions2))
	}
	for i := range decisions1 {
		if decisions1[i] != decisions2[i] {
			t.Fatalf("decision %d diverged: %q vs %q", i, decisions1[i], decisions2[i])
		}
	}
	s1, s2 := r1.Snapshot(), r2.Snapshot()
	if s1.Switches != s2.Switches {
		t.Fatalf("switch counts diverged: %d vs %d", s1.Switches, s2.Switches)
	}
}

// TestRouterDefaults pins the documented zero-value behavior.
func TestRouterDefaults(t *testing.T) {
	r := NewRouter(obs.NewTracker(), RouterConfig{})
	cfg := r.Config()
	if cfg.MinSamples != 16 || cfg.MinDwell != 32 || cfg.Margin != 0.02 || cfg.Fallback != "SMP" {
		t.Fatalf("defaults = %+v", cfg)
	}
	if len(cfg.Predictors) == 0 {
		t.Fatal("default candidate set empty, want every registered plugin")
	}
	for i := 1; i < len(cfg.Predictors); i++ {
		if cfg.Predictors[i-1] >= cfg.Predictors[i] {
			t.Fatalf("candidate set not sorted: %v", cfg.Predictors)
		}
	}
	neg := NewRouter(obs.NewTracker(), RouterConfig{Margin: -1})
	if neg.Config().Margin != 0 {
		t.Fatalf("negative margin = %v, want exactly 0", neg.Config().Margin)
	}
}
