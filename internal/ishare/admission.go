package ishare

import "sync"

// admitter is the server's global in-flight limiter with per-connection
// fairness. It grants up to `slots` concurrent requests; when all slots are
// busy, new requests queue per connection and freed slots are handed out
// round-robin across connections, so one client pipelining hundreds of
// requests cannot starve a client sending one. When the total number of
// queued waiters reaches maxWait the request is shed instead — the caller
// turns that into the typed overloaded error.
type admitter struct {
	mu      sync.Mutex
	slots   int // free slots remaining
	waiting int // total queued waiters across all connections
	maxWait int // shed threshold for `waiting`
	queues  map[interface{}]*connQueue
	order   []*connQueue // round-robin ring over connections with waiters
	rr      int          // next ring index to grant from
	sheds   uint64
}

// connQueue is one connection's FIFO of waiters.
type connQueue struct {
	key     interface{}
	waiters []chan struct{}
}

func newAdmitter(slots, maxWait int) *admitter {
	return &admitter{
		slots:   slots,
		maxWait: maxWait,
		queues:  make(map[interface{}]*connQueue),
	}
}

// acquire blocks until a slot is granted, returning true; it returns false
// immediately when the waiter queue is full (shed), or when done closes
// first (the connection died while queued). A grant that races with done is
// returned to the pool, so slots never leak.
func (a *admitter) acquire(key interface{}, done <-chan struct{}) bool {
	a.mu.Lock()
	if a.slots > 0 && a.waiting == 0 {
		a.slots--
		a.mu.Unlock()
		return true
	}
	if a.waiting >= a.maxWait {
		a.sheds++
		a.mu.Unlock()
		return false
	}
	q, ok := a.queues[key]
	if !ok {
		q = &connQueue{key: key}
		a.queues[key] = q
		a.order = append(a.order, q)
	}
	grant := make(chan struct{}, 1)
	q.waiters = append(q.waiters, grant)
	a.waiting++
	a.mu.Unlock()

	select {
	case <-grant:
		return true
	case <-done:
		a.mu.Lock()
		// Try to withdraw from the queue; if the grant already arrived
		// concurrently, hand the slot back instead.
		select {
		case <-grant:
			a.releaseLocked()
		default:
			if q := a.queues[key]; q != nil {
				for i, w := range q.waiters {
					if w == grant {
						q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
						a.waiting--
						break
					}
				}
			}
		}
		a.mu.Unlock()
		return false
	}
}

// release returns a slot, granting it to the next waiter in round-robin
// order across connections.
func (a *admitter) release() {
	a.mu.Lock()
	a.releaseLocked()
	a.mu.Unlock()
}

func (a *admitter) releaseLocked() {
	// Scan the ring once starting at rr for a connection with waiters.
	for range a.order {
		q := a.order[a.rr%len(a.order)]
		a.rr = (a.rr + 1) % len(a.order)
		if len(q.waiters) > 0 {
			grant := q.waiters[0]
			q.waiters = q.waiters[1:]
			a.waiting--
			grant <- struct{}{}
			return
		}
	}
	a.slots++
}

// forget drops a dead connection's queue from the ring. Queued waiters have
// already been released via their done channel.
func (a *admitter) forget(key interface{}) {
	a.mu.Lock()
	defer a.mu.Unlock()
	q, ok := a.queues[key]
	if !ok {
		return
	}
	delete(a.queues, key)
	for i, e := range a.order {
		if e == q {
			a.order = append(a.order[:i], a.order[i+1:]...)
			if a.rr > i {
				a.rr--
			}
			if len(a.order) > 0 {
				a.rr %= len(a.order)
			} else {
				a.rr = 0
			}
			break
		}
	}
	// Any waiters still queued (done not yet observed) are unblocked by
	// counting them out; their acquire returns false via done.
	a.waiting -= len(q.waiters)
	q.waiters = nil
}

// shedCount reports how many requests the admitter has shed.
func (a *admitter) shedCount() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sheds
}
