package ishare

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/monitor"
	"fgcs/internal/predict"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
)

// StateManager stores history logs and predicts resource availability
// (Figure 2). It receives every monitor sample, maintains the machine's
// current availability state, and answers temporal-reliability queries from
// the gateway using the SMP predictor.
type StateManager struct {
	mu        sync.Mutex
	cfg       avail.Config
	period    time.Duration
	clock     simclock.Clock
	recorder  *monitor.Recorder
	preloaded *trace.Machine // history from previous runs (may be nil)
	recent    []trace.Sample // ring of recent samples for current-state tracking
	recentCap int
	predictor predict.SMP
}

// NewStateManager creates a state manager for one machine. preloaded may
// carry history recorded by previous runs (loaded from a trace file); it may
// be nil. historyDays bounds the SMP estimator's day pool (0 = all).
func NewStateManager(machineID string, period time.Duration, cfg avail.Config, clock simclock.Clock, preloaded *trace.Machine, historyDays int) (*StateManager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if period <= 0 {
		return nil, fmt.Errorf("ishare: non-positive period")
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	if preloaded != nil && preloaded.Period != period {
		return nil, fmt.Errorf("ishare: preloaded history period %v != %v", preloaded.Period, period)
	}
	recentCap := int(cfg.SuspendLimit/period) + 4
	return &StateManager{
		cfg:       cfg,
		period:    period,
		clock:     clock,
		recorder:  monitor.NewRecorder(machineID, period, 0),
		preloaded: preloaded,
		recentCap: recentCap,
		predictor: predict.SMP{Cfg: cfg, HistoryDays: historyDays},
	}, nil
}

// Record implements monitor.Sink: it archives the sample and refreshes the
// current-state estimate.
func (sm *StateManager) Record(t time.Time, s trace.Sample) {
	sm.recorder.Record(t, s)
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.recent = append(sm.recent, s)
	if len(sm.recent) > sm.recentCap {
		sm.recent = sm.recent[len(sm.recent)-sm.recentCap:]
	}
}

// CurrentState classifies the machine's present availability state from the
// recent sample window.
func (sm *StateManager) CurrentState() avail.State {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if len(sm.recent) == 0 {
		return avail.S1
	}
	states := avail.Classify(sm.recent, sm.cfg, sm.period)
	return states[len(states)-1]
}

// History returns the full day history available for prediction: preloaded
// days followed by the live-recorded ones.
func (sm *StateManager) History() []*trace.Day {
	var days []*trace.Day
	if sm.preloaded != nil {
		days = append(days, sm.preloaded.Days...)
	}
	days = append(days, sm.recorder.Snapshot().Days...)
	return days
}

// Archive persists the full history (preloaded + live-recorded days, merged
// chronologically with live data winning on overlap) to a trace file; the
// extension selects the codec (".gz" recommended for long-running nodes).
// A node restarted with the archive as its Preloaded history resumes with
// everything it ever learned.
func (sm *StateManager) Archive(path string) error {
	merged := trace.NewMachine(sm.recorder.Snapshot().ID, sm.period)
	byDate := map[int64]*trace.Day{}
	var order []int64
	add := func(d *trace.Day) {
		key := d.Date.Unix()
		if _, seen := byDate[key]; !seen {
			order = append(order, key)
		}
		byDate[key] = d
	}
	if sm.preloaded != nil {
		for _, d := range sm.preloaded.Days {
			add(d)
		}
	}
	for _, d := range sm.recorder.Snapshot().Days {
		add(d)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, key := range order {
		if err := merged.AddDay(byDate[key]); err != nil {
			return err
		}
	}
	return trace.SaveFile(path, &trace.Dataset{Machines: []*trace.Machine{merged}})
}

// QueryTR predicts the probability that this machine stays available for a
// guest job of the given length and memory footprint starting now.
func (sm *StateManager) QueryTR(req QueryTRReq) (QueryTRResp, error) {
	if req.LengthSeconds <= 0 {
		return QueryTRResp{}, fmt.Errorf("ishare: non-positive job length")
	}
	now := sm.clock.Now().UTC()
	cur := sm.CurrentState()
	if !cur.Recoverable() {
		return QueryTRResp{TR: 0, CurrentState: cur.String()}, nil
	}
	midnight := time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, time.UTC)
	start := now.Sub(midnight).Truncate(sm.period)
	length := time.Duration(req.LengthSeconds * float64(time.Second)).Truncate(sm.period)
	if length < sm.period {
		length = sm.period
	}
	// Clip to midnight: the day-structured estimator pools same-clock
	// windows, which do not wrap (windows beyond midnight would mix day
	// types).
	if start+length > 24*time.Hour {
		length = 24*time.Hour - start
	}
	w := predict.Window{Start: start, Length: length}

	cfg := sm.predictor
	if req.GuestMemMB > 0 {
		cfg.Cfg.GuestMemMB = req.GuestMemMB
	}
	// History: same-type days strictly before today.
	var days []*trace.Day
	today := midnight
	for _, d := range sm.History() {
		if d.Date.Before(today) && d.Type() == trace.TypeOfDate(today) {
			days = append(days, d)
		}
	}
	if len(days) == 0 {
		// No history yet: report optimistic full availability; the
		// scheduler treats all such machines equally.
		return QueryTRResp{TR: 1, HistoryWindows: 0, CurrentState: cur.String()}, nil
	}
	tr, err := cfg.PredictFrom(days, w, cur)
	if err != nil {
		return QueryTRResp{}, err
	}
	return QueryTRResp{TR: tr, HistoryWindows: len(days), CurrentState: cur.String()}, nil
}
