package ishare

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/monitor"
	"fgcs/internal/otrace"
	"fgcs/internal/predict"
	"fgcs/internal/simclock"
	"fgcs/internal/timeseries"
	"fgcs/internal/trace"
)

// StateManager stores history logs and predicts resource availability
// (Figure 2). It receives every monitor sample, maintains the machine's
// current availability state, and answers temporal-reliability queries from
// the gateway using the SMP predictor.
//
// Queries run through a prediction engine that memoizes fitted kernels, so
// repeated or concurrent QueryTR calls for the same clock window reuse one
// estimation. The engine's cache keys include a content fingerprint of the
// history days; the manager therefore maintains a stable snapshot of the
// completed (pre-today) days — rebuilt only when the recorder rolls over to
// a new day — so the same *trace.Day pointers are presented to the engine
// across queries and its per-day hash memoization pays off.
type StateManager struct {
	mu        sync.Mutex
	machineID string
	cfg       avail.Config
	period    time.Duration
	clock     simclock.Clock
	recorder  *monitor.Recorder
	preloaded *trace.Machine // history from previous runs (may be nil)
	recent    []trace.Sample // ring of recent samples for current-state tracking
	recentCap int
	predictor predict.SMP
	engine    *predict.Engine
	obsv      *NodeObs
	baselines []timeseries.Fitter
	fft       predict.Spectral
	pct       predict.Percentile
	router    *Router // nil = single-predictor serving
	forced    string  // non-empty pins serving to one predictor
	stateBuf  []avail.State // scratch for per-sample classification (under mu)
	curState  avail.State   // last classified state, valid when recent is non-empty (under mu)
	sampleVer atomic.Uint64 // bumped on every recorded sample

	// The baseline forecasts in recordPredictions depend only on the queried
	// window, the effective config and today's recorded samples, so repeated
	// queries between samples refit nothing. The memo is invalidated
	// wholesale whenever a sample lands (sampleVer moves).
	baseMu   sync.Mutex
	baseVer  uint64
	baseMemo map[baselineKey][]baselinePred

	histMu    sync.Mutex
	histDays  []*trace.Day // completed days, stable across queries
	histTyped []*trace.Day // histDays restricted to today's day type
	histLive  int          // recorder day count the snapshot was built from
	histToday int64        // unix midnight the snapshot was filtered against
}

// NewStateManager creates a state manager for one machine. preloaded may
// carry history recorded by previous runs (loaded from a trace file); it may
// be nil. historyDays bounds the SMP estimator's day pool (0 = all).
func NewStateManager(machineID string, period time.Duration, cfg avail.Config, clock simclock.Clock, preloaded *trace.Machine, historyDays int) (*StateManager, error) {
	return NewStateManagerShared(machineID, period, cfg, clock, preloaded, historyDays, SharedDeps{})
}

// SharedDeps carries the heavyweight per-node dependencies a caller may
// share across many StateManagers. A production host node owns one of each,
// but a fleet simulation hosting 100k machines in one process cannot afford
// a full metric registry (~50 instrument families) and a prediction-kernel
// cache per machine: shared, the observability bundle amortizes to nothing
// and the engine turns machines with identical history into cache hits
// (its keys fingerprint history content, not machine identity). Zero-value
// fields fall back to per-manager instances.
//
// Sharing is visible in two places: the accuracy tracker scores every
// sharing machine into one table (QueryStats on any of them reports all),
// and a shared Engine's metrics are the caller's to wire.
type SharedDeps struct {
	// Obs is the observability bundle to record into (nil = own bundle).
	Obs *NodeObs
	// Engine is the prediction engine to query through (nil = own engine,
	// wired to the bundle's engine metrics).
	Engine *predict.Engine
	// Router, when non-nil, turns on ensemble serving: each QueryTR is
	// answered by the predictor the router selects from the shared
	// accuracy tracker's rolling Brier scores. The router's tracker must
	// be the bundle's tracker (shared across every manager using it).
	Router *Router
}

// NewStateManagerShared is NewStateManager with injected shared
// dependencies; see SharedDeps.
func NewStateManagerShared(machineID string, period time.Duration, cfg avail.Config, clock simclock.Clock, preloaded *trace.Machine, historyDays int, deps SharedDeps) (*StateManager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if period <= 0 {
		return nil, fmt.Errorf("ishare: non-positive period")
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	if preloaded != nil && preloaded.Period != period {
		return nil, fmt.Errorf("ishare: preloaded history period %v != %v", preloaded.Period, period)
	}
	obsv := deps.Obs
	if obsv == nil {
		obsv = NewNodeObs()
	}
	recentCap := int(cfg.SuspendLimit/period) + 4
	fft := predict.DefaultSpectral()
	fft.Cfg = cfg
	fft.HistoryDays = historyDays
	pct := predict.DefaultPercentile()
	pct.Cfg = cfg
	pct.HistoryDays = historyDays
	sm := &StateManager{
		machineID: machineID,
		cfg:       cfg,
		period:    period,
		clock:     clock,
		recorder:  monitor.NewRecorder(machineID, period, 0),
		preloaded: preloaded,
		recentCap: recentCap,
		predictor: predict.SMP{Cfg: cfg, HistoryDays: historyDays},
		engine:    deps.Engine,
		obsv:      obsv,
		baselines: timeseries.ReferenceSuite(),
		fft:       fft,
		pct:       pct,
		router:    deps.Router,
		stateBuf:  make([]avail.State, 0, recentCap),
	}
	if sm.engine == nil {
		sm.engine = predict.NewEngine(predict.EngineConfig{})
		sm.engine.SetMetrics(obsv.Engine)
	}
	return sm, nil
}

// SetLogger routes the history recorder's dropped-sample warnings through
// the given logger (nil disables). Call before samples start flowing.
func (sm *StateManager) SetLogger(l *slog.Logger) { sm.recorder.SetLogger(l) }

// EngineStats reports the prediction engine's cache counters.
func (sm *StateManager) EngineStats() predict.EngineStats { return sm.engine.Stats() }

// Obs exposes the node's observability bundle: the metrics registry every
// component on this node records into and the online accuracy tracker.
func (sm *StateManager) Obs() *NodeObs { return sm.obsv }

// Router returns the ensemble router serving this manager, nil when the node
// runs single-predictor.
func (sm *StateManager) Router() *Router { return sm.router }

// ForcePredictor pins QueryTR serving to one registered predictor plugin
// (shadow scoring of the others continues). Empty restores the default.
// Call before queries flow; the name must be registered.
func (sm *StateManager) ForcePredictor(name string) error {
	if name != "" {
		if _, ok := predict.NewPlugin(name, predict.PluginOptions{Cfg: sm.cfg}); !ok {
			return fmt.Errorf("ishare: unknown predictor %q (registered: %s)", name, strings.Join(predict.PluginNames(), ", "))
		}
	}
	sm.forced = name
	return nil
}

// Record implements monitor.Sink: it archives the sample, refreshes the
// current-state estimate, and feeds the availability outcome to the accuracy
// tracker so pending TR predictions whose windows cover this instant are
// scored. The classification reuses a scratch buffer, so the per-sample path
// does not allocate at steady state.
func (sm *StateManager) Record(t time.Time, s trace.Sample) {
	sm.recorder.Record(t, s)
	sm.mu.Lock()
	sm.recent = append(sm.recent, s)
	if len(sm.recent) > sm.recentCap {
		sm.recent = sm.recent[len(sm.recent)-sm.recentCap:]
	}
	sm.stateBuf = avail.ClassifyInto(sm.stateBuf, sm.recent, sm.cfg, sm.period)
	up := true
	if n := len(sm.stateBuf); n > 0 {
		sm.curState = sm.stateBuf[n-1]
		up = sm.curState.Recoverable()
	}
	sm.mu.Unlock()
	sm.sampleVer.Add(1)
	sm.obsv.Monitor.Samples.Inc()
	sm.obsv.Tracker.Observe(sm.machineID, t, up)
}

// RestoreSample is the WAL-replay twin of Record: it applies one recovered
// sample through the identical archival and classification path but skips
// the observability side effects — the sample counter counts only what this
// process ingested live, and the accuracy tracker's pending predictions are
// not persisted, so replay has nothing to resolve. Because the live path
// quantizes samples at ingest (see Persister), replaying the WAL rebuilds
// recorder, recent ring and current state bit-identically.
func (sm *StateManager) RestoreSample(t time.Time, s trace.Sample) {
	sm.recorder.Record(t, s)
	sm.mu.Lock()
	sm.recent = append(sm.recent, s)
	if len(sm.recent) > sm.recentCap {
		sm.recent = sm.recent[len(sm.recent)-sm.recentCap:]
	}
	sm.stateBuf = avail.ClassifyInto(sm.stateBuf, sm.recent, sm.cfg, sm.period)
	if n := len(sm.stateBuf); n > 0 {
		sm.curState = sm.stateBuf[n-1]
	}
	sm.mu.Unlock()
	sm.sampleVer.Add(1)
}

// ExportHistory deep-copies the state a durable snapshot must carry to
// rebuild this manager: the recorded log, the last-sample timestamp and the
// recent ring (which differs from the log tail — gap back-fill writes down
// samples into the log that never enter the ring).
func (sm *StateManager) ExportHistory() (*trace.Machine, time.Time, []trace.Sample) {
	m, last := sm.recorder.Export()
	sm.mu.Lock()
	recent := append([]trace.Sample(nil), sm.recent...)
	sm.mu.Unlock()
	return m, last, recent
}

// RestoreHistory installs recovered snapshot state: the recorded log, the
// last-sample timestamp and the recent ring. The current availability state
// is re-derived from the ring rather than persisted. Call before samples
// flow; WAL-tail samples are then replayed through RestoreSample on top.
func (sm *StateManager) RestoreHistory(m *trace.Machine, last time.Time, recent []trace.Sample) error {
	if err := sm.recorder.Restore(m, last); err != nil {
		return err
	}
	sm.mu.Lock()
	sm.recent = append(sm.recent[:0], recent...)
	if len(sm.recent) > sm.recentCap {
		sm.recent = sm.recent[len(sm.recent)-sm.recentCap:]
	}
	sm.stateBuf = avail.ClassifyInto(sm.stateBuf, sm.recent, sm.cfg, sm.period)
	if n := len(sm.stateBuf); n > 0 {
		sm.curState = sm.stateBuf[n-1]
	}
	sm.mu.Unlock()
	sm.sampleVer.Add(1)
	return nil
}

// CurrentState classifies the machine's present availability state from the
// recent sample window.
func (sm *StateManager) CurrentState() avail.State {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if len(sm.recent) == 0 {
		return avail.S1
	}
	// The recent ring only changes in Record, which classifies it as it
	// lands — the query path rides that result instead of re-classifying.
	return sm.curState
}

// History returns the full day history available for prediction: preloaded
// days followed by the live-recorded ones.
func (sm *StateManager) History() []*trace.Day {
	var days []*trace.Day
	if sm.preloaded != nil {
		days = append(days, sm.preloaded.Days...)
	}
	days = append(days, sm.recorder.Snapshot().Days...)
	return days
}

// completedDays returns the history days strictly before today, from a
// cached view that is rebuilt only when the recorder rolls into a new day
// (or the query date changes). The live days come from the recorder's
// sealed DaysBefore view — stable pointers, no deep clone — so the
// prediction engine serves repeated queries from its kernel cache without
// rehashing the history, and a day rollover costs one slice rebuild
// instead of a full-history copy; the rebuild on day rollover is exactly
// the engine's invalidation-on-new-day moment.
// The second return value is histDays restricted to days of the same type
// (weekday/weekend) as today — the pool the day-structured estimator pools
// over — cached on the same terms so the hot query path does no per-day
// date arithmetic at all.
func (sm *StateManager) completedDays(today time.Time) ([]*trace.Day, []*trace.Day) {
	sm.histMu.Lock()
	defer sm.histMu.Unlock()
	live := sm.recorder.Days()
	if sm.histDays != nil && live == sm.histLive && today.Unix() == sm.histToday {
		return sm.histDays, sm.histTyped
	}
	// Rebuild from sealed live days (stable pointers, no clone — the
	// Snapshot deep copy here was a full-history copy per machine per
	// rollover, the dominant rollover stall at fleet scale) plus the
	// preloaded days, both filtered to strictly before today.
	kept := make([]*trace.Day, 0, live)
	if sm.preloaded != nil {
		for _, d := range sm.preloaded.Days {
			if d.Date.Before(today) {
				kept = append(kept, d)
			}
		}
	}
	kept = append(kept, sm.recorder.DaysBefore(today)...)
	tt := trace.TypeOfDate(today)
	typed := make([]*trace.Day, 0, len(kept))
	for _, d := range kept {
		if d.Type() == tt {
			typed = append(typed, d)
		}
	}
	sm.histDays = kept
	sm.histTyped = typed
	sm.histLive = live
	sm.histToday = today.Unix()
	return sm.histDays, sm.histTyped
}

// Archive persists the full history (preloaded + live-recorded days, merged
// chronologically with live data winning on overlap) to a trace file; the
// extension selects the codec (".gz" recommended for long-running nodes).
// A node restarted with the archive as its Preloaded history resumes with
// everything it ever learned.
func (sm *StateManager) Archive(path string) error {
	merged := trace.NewMachine(sm.recorder.Snapshot().ID, sm.period)
	byDate := map[int64]*trace.Day{}
	var order []int64
	add := func(d *trace.Day) {
		key := d.Date.Unix()
		if _, seen := byDate[key]; !seen {
			order = append(order, key)
		}
		byDate[key] = d
	}
	if sm.preloaded != nil {
		for _, d := range sm.preloaded.Days {
			add(d)
		}
	}
	for _, d := range sm.recorder.Snapshot().Days {
		add(d)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, key := range order {
		if err := merged.AddDay(byDate[key]); err != nil {
			return err
		}
	}
	return trace.SaveFile(path, &trace.Dataset{Machines: []*trace.Machine{merged}})
}

// QueryTR predicts the probability that this machine stays available for a
// guest job of the given length and memory footprint starting now. Under a
// sampled trace the query runs in a "state.query-tr" span; the prediction
// engine marks cache hits and misses on it.
func (sm *StateManager) QueryTR(ctx context.Context, req QueryTRReq) (QueryTRResp, error) {
	if req.LengthSeconds <= 0 {
		return QueryTRResp{}, fmt.Errorf("ishare: non-positive job length")
	}
	ctx, span := otrace.StartSpan(ctx, "state.query-tr")
	defer span.End()
	now := sm.clock.Now().UTC()
	cur := sm.CurrentState()
	if !cur.Recoverable() {
		span.AddEvent("unrecoverable-state", otrace.String("state", cur.String()))
		return QueryTRResp{TR: 0, CurrentState: cur.String()}, nil
	}
	midnight := time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, time.UTC)
	start := now.Sub(midnight).Truncate(sm.period)
	length := time.Duration(req.LengthSeconds * float64(time.Second)).Truncate(sm.period)
	if length < sm.period {
		length = sm.period
	}
	// Clip to midnight: the day-structured estimator pools same-clock
	// windows, which do not wrap (windows beyond midnight would mix day
	// types).
	if start+length > 24*time.Hour {
		length = 24*time.Hour - start
	}
	w := predict.Window{Start: start, Length: length}

	cfg := sm.predictor
	if req.GuestMemMB > 0 {
		cfg.Cfg.GuestMemMB = req.GuestMemMB
	}
	// History: same-type days strictly before today, drawn from the stable
	// snapshot so the engine can recognize repeated queries.
	_, days := sm.completedDays(midnight)
	if len(days) == 0 {
		// No history yet: report optimistic full availability; the
		// scheduler treats all such machines equally. The ensemble serves
		// its fallback here — no predictor has anything to fit on.
		span.AddEvent("no-history")
		resp := QueryTRResp{TR: 1, HistoryWindows: 0, CurrentState: cur.String()}
		if sm.forced != "" || sm.router != nil {
			resp.Predictor = "SMP"
		}
		st := sm.engine.Stats()
		resp.CacheHits, resp.CacheMisses = st.Hits, st.Misses
		sm.recordPredictions(ctx, midnight, w, cfg.Cfg, 1, nil)
		return resp, nil
	}
	tr, err := sm.engine.PredictFromCtx(ctx, cfg, days, w, cur)
	if err != nil {
		span.SetError(err)
		return QueryTRResp{}, err
	}
	resp := QueryTRResp{TR: tr, HistoryWindows: len(days), CurrentState: cur.String()}
	shadows := sm.recordPredictions(ctx, midnight, w, cfg.Cfg, tr, days)
	// Ensemble serving: a forced predictor (operator override) or the
	// router's per-machine selection replaces the SMP answer, falling back
	// to SMP when the chosen predictor produced nothing for this window.
	if serving := sm.servingPredictor(); serving != "" {
		resp.Predictor = "SMP"
		if serving != "SMP" {
			for _, sp := range shadows {
				if sp.name == serving {
					resp.TR, resp.Predictor = sp.p, serving
					span.AddEvent("ensemble-routed", otrace.String("predictor", serving))
					break
				}
			}
		}
	}
	st := sm.engine.Stats()
	resp.CacheHits, resp.CacheMisses = st.Hits, st.Misses
	return resp, nil
}

// servingPredictor names the plugin that should answer the current query:
// the forced override, the router's choice, or "" for plain SMP serving.
func (sm *StateManager) servingPredictor() string {
	if sm.forced != "" {
		return sm.forced
	}
	if sm.router != nil {
		return sm.router.Route(sm.machineID)
	}
	return ""
}

// recordPredictions registers the SMP prediction for the issued window with
// the accuracy tracker, alongside every shadow predictor: the Table 1
// linear baselines (AR, BM, MA, ARMA, LAST) forecast from the window
// immediately preceding the query window in today's live log, plus the
// ensemble's spectral (FFT) and percentile (PCT) plugins fitted on the
// completed-day history — the paper's Section 5 comparison, scored online
// as each window's outcome is observed by the monitor, and the signal the
// ensemble router selects on. The shadow list is returned so the serving
// path can answer with whichever predictor the router picked.
func (sm *StateManager) recordPredictions(ctx context.Context, midnight time.Time, w predict.Window, cfg avail.Config, smpTR float64, days []*trace.Day) []baselinePred {
	tracker := sm.obsv.Tracker
	start := midnight.Add(w.Start)
	tracker.RecordPrediction(sm.machineID, "SMP", smpTR, start, w.Length)
	shadows := sm.shadowPredictions(ctx, midnight, w, cfg, days)
	for _, bp := range shadows {
		tracker.RecordPrediction(sm.machineID, bp.name, bp.p, start, w.Length)
	}
	return shadows
}

// shadowPredictions produces every shadow predictor's TR for the query
// window: the memoized linear baselines plus the FFT and PCT plugins, which
// run through the prediction engine so their day-structured fits are
// memoized in the kernel LRU exactly like SMP's (repeated queries for the
// same window hit the cache; the plugin name and config salt keep entries
// isolated). days carries the same stable snapshot the SMP path used — nil
// when the machine has no completed history, in which case the
// day-structured shadows are skipped.
func (sm *StateManager) shadowPredictions(ctx context.Context, midnight time.Time, w predict.Window, cfg avail.Config, days []*trace.Day) []baselinePred {
	preds := sm.baselinePredictions(midnight, w, cfg)
	if len(days) == 0 {
		return preds
	}
	// Copying the plugin value and setting Cfg folds the per-query config
	// (guest memory) into the cache salt — the Cacheable contract.
	in := predict.PluginInput{Days: days, Window: w, Period: sm.period}
	fft := sm.fft
	fft.Cfg = cfg
	pct := sm.pct
	pct.Cfg = cfg
	// preds aliases the memoized baseline slice; append must not grow it in
	// place or concurrent queries sharing the memo entry would race.
	out := make([]baselinePred, len(preds), len(preds)+2)
	copy(out, preds)
	if tr, err := sm.engine.PredictPluginCtx(ctx, fft, in); err == nil {
		out = append(out, baselinePred{name: fft.Name(), p: tr})
	}
	if tr, err := sm.engine.PredictPluginCtx(ctx, pct, in); err == nil {
		out = append(out, baselinePred{name: pct.Name(), p: tr})
	}
	return out
}

// baselineKey identifies one baseline forecast: the query window, the day it
// targets, and the effective estimator config. The recorded-sample version
// is carried beside the memo, not in the key: a new sample invalidates every
// entry at once.
type baselineKey struct {
	midnight int64
	window   predict.Window
	cfg      avail.Config
}

type baselinePred struct {
	name string
	p    float64
}

// baselinePredictions fits the Table 1 linear estimators (AR, BM, MA, ARMA,
// LAST) over the window preceding the query window in today's live log. The
// fits are pure functions of (window, config, today's samples), and the
// serving path repeats the same handful of queries between monitor samples,
// so the results are memoized until the next sample lands — on the hot path
// this removes the dominant per-query CPU cost (the refits) entirely.
func (sm *StateManager) baselinePredictions(midnight time.Time, w predict.Window, cfg avail.Config) []baselinePred {
	key := baselineKey{midnight: midnight.Unix(), window: w, cfg: cfg}
	ver := sm.sampleVer.Load()
	sm.baseMu.Lock()
	if sm.baseVer != ver || sm.baseMemo == nil {
		sm.baseVer = ver
		sm.baseMemo = make(map[baselineKey][]baselinePred)
	}
	preds, hit := sm.baseMemo[key]
	sm.baseMu.Unlock()
	if hit {
		return preds
	}

	prevStart := w.Start - w.Length
	if prevStart < 0 {
		prevStart = 0
	}
	prev := sm.recorder.DayWindow(midnight, prevStart, w.Start-prevStart)
	preds = make([]baselinePred, 0, len(sm.baselines))
	for _, f := range sm.baselines {
		ts := predict.TimeSeries{Cfg: cfg, Fitter: f}
		survives, err := ts.PredictWindow(prev, w, sm.period)
		if err != nil {
			continue
		}
		p := 0.0
		if survives {
			p = 1
		}
		preds = append(preds, baselinePred{name: f.Name(), p: p})
	}

	sm.baseMu.Lock()
	// Re-check the version: a sample may have landed mid-fit, making this
	// result stale for future queries (it is still the right answer for
	// this one). The size cap only guards against adversarial query mixes.
	if sm.baseVer == ver && len(sm.baseMemo) < 512 {
		sm.baseMemo[key] = preds
	}
	sm.baseMu.Unlock()
	return preds
}
