package ishare

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/monitor"
	"fgcs/internal/otrace"
	"fgcs/internal/predict"
	"fgcs/internal/simclock"
	"fgcs/internal/timeseries"
	"fgcs/internal/trace"
)

// StateManager stores history logs and predicts resource availability
// (Figure 2). It receives every monitor sample, maintains the machine's
// current availability state, and answers temporal-reliability queries from
// the gateway using the SMP predictor.
//
// Queries run through a prediction engine that memoizes fitted kernels, so
// repeated or concurrent QueryTR calls for the same clock window reuse one
// estimation. The engine's cache keys include a content fingerprint of the
// history days; the manager therefore maintains a stable snapshot of the
// completed (pre-today) days — rebuilt only when the recorder rolls over to
// a new day — so the same *trace.Day pointers are presented to the engine
// across queries and its per-day hash memoization pays off.
type StateManager struct {
	mu        sync.Mutex
	machineID string
	cfg       avail.Config
	period    time.Duration
	clock     simclock.Clock
	recorder  *monitor.Recorder
	preloaded *trace.Machine // history from previous runs (may be nil)
	recent    []trace.Sample // ring of recent samples for current-state tracking
	recentCap int
	predictor predict.SMP
	engine    *predict.Engine
	obsv      *NodeObs
	baselines []timeseries.Fitter
	stateBuf  []avail.State // scratch for per-sample classification (under mu)

	histMu    sync.Mutex
	histDays  []*trace.Day // completed days, stable across queries
	histLive  int          // recorder day count the snapshot was built from
	histToday int64        // unix midnight the snapshot was filtered against
}

// NewStateManager creates a state manager for one machine. preloaded may
// carry history recorded by previous runs (loaded from a trace file); it may
// be nil. historyDays bounds the SMP estimator's day pool (0 = all).
func NewStateManager(machineID string, period time.Duration, cfg avail.Config, clock simclock.Clock, preloaded *trace.Machine, historyDays int) (*StateManager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if period <= 0 {
		return nil, fmt.Errorf("ishare: non-positive period")
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	if preloaded != nil && preloaded.Period != period {
		return nil, fmt.Errorf("ishare: preloaded history period %v != %v", preloaded.Period, period)
	}
	recentCap := int(cfg.SuspendLimit/period) + 4
	sm := &StateManager{
		machineID: machineID,
		cfg:       cfg,
		period:    period,
		clock:     clock,
		recorder:  monitor.NewRecorder(machineID, period, 0),
		preloaded: preloaded,
		recentCap: recentCap,
		predictor: predict.SMP{Cfg: cfg, HistoryDays: historyDays},
		engine:    predict.NewEngine(predict.EngineConfig{}),
		obsv:      NewNodeObs(),
		baselines: timeseries.ReferenceSuite(),
		stateBuf:  make([]avail.State, 0, recentCap),
	}
	sm.engine.SetMetrics(sm.obsv.Engine)
	return sm, nil
}

// SetLogger routes the history recorder's dropped-sample warnings through
// the given logger (nil disables). Call before samples start flowing.
func (sm *StateManager) SetLogger(l *slog.Logger) { sm.recorder.SetLogger(l) }

// EngineStats reports the prediction engine's cache counters.
func (sm *StateManager) EngineStats() predict.EngineStats { return sm.engine.Stats() }

// Obs exposes the node's observability bundle: the metrics registry every
// component on this node records into and the online accuracy tracker.
func (sm *StateManager) Obs() *NodeObs { return sm.obsv }

// Record implements monitor.Sink: it archives the sample, refreshes the
// current-state estimate, and feeds the availability outcome to the accuracy
// tracker so pending TR predictions whose windows cover this instant are
// scored. The classification reuses a scratch buffer, so the per-sample path
// does not allocate at steady state.
func (sm *StateManager) Record(t time.Time, s trace.Sample) {
	sm.recorder.Record(t, s)
	sm.mu.Lock()
	sm.recent = append(sm.recent, s)
	if len(sm.recent) > sm.recentCap {
		sm.recent = sm.recent[len(sm.recent)-sm.recentCap:]
	}
	sm.stateBuf = avail.ClassifyInto(sm.stateBuf, sm.recent, sm.cfg, sm.period)
	up := true
	if n := len(sm.stateBuf); n > 0 {
		up = sm.stateBuf[n-1].Recoverable()
	}
	sm.mu.Unlock()
	sm.obsv.Monitor.Samples.Inc()
	sm.obsv.Tracker.Observe(sm.machineID, t, up)
}

// CurrentState classifies the machine's present availability state from the
// recent sample window.
func (sm *StateManager) CurrentState() avail.State {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if len(sm.recent) == 0 {
		return avail.S1
	}
	states := avail.Classify(sm.recent, sm.cfg, sm.period)
	return states[len(states)-1]
}

// History returns the full day history available for prediction: preloaded
// days followed by the live-recorded ones.
func (sm *StateManager) History() []*trace.Day {
	var days []*trace.Day
	if sm.preloaded != nil {
		days = append(days, sm.preloaded.Days...)
	}
	days = append(days, sm.recorder.Snapshot().Days...)
	return days
}

// completedDays returns the history days strictly before today, from a
// cached snapshot that is rebuilt only when the recorder rolls into a new
// day (or the query date changes). Reusing the snapshot keeps the day
// pointers stable, which is what lets the prediction engine serve repeated
// queries from its kernel cache without rehashing the history; the rebuild
// on day rollover is exactly the engine's invalidation-on-new-day moment.
func (sm *StateManager) completedDays(today time.Time) []*trace.Day {
	sm.histMu.Lock()
	defer sm.histMu.Unlock()
	live := sm.recorder.Days()
	if sm.histDays != nil && live == sm.histLive && today.Unix() == sm.histToday {
		return sm.histDays
	}
	days := make([]*trace.Day, 0, live)
	if sm.preloaded != nil {
		days = append(days, sm.preloaded.Days...)
	}
	days = append(days, sm.recorder.Snapshot().Days...)
	kept := days[:0]
	for _, d := range days {
		if d.Date.Before(today) {
			kept = append(kept, d)
		}
	}
	sm.histDays = kept
	sm.histLive = live
	sm.histToday = today.Unix()
	return sm.histDays
}

// Archive persists the full history (preloaded + live-recorded days, merged
// chronologically with live data winning on overlap) to a trace file; the
// extension selects the codec (".gz" recommended for long-running nodes).
// A node restarted with the archive as its Preloaded history resumes with
// everything it ever learned.
func (sm *StateManager) Archive(path string) error {
	merged := trace.NewMachine(sm.recorder.Snapshot().ID, sm.period)
	byDate := map[int64]*trace.Day{}
	var order []int64
	add := func(d *trace.Day) {
		key := d.Date.Unix()
		if _, seen := byDate[key]; !seen {
			order = append(order, key)
		}
		byDate[key] = d
	}
	if sm.preloaded != nil {
		for _, d := range sm.preloaded.Days {
			add(d)
		}
	}
	for _, d := range sm.recorder.Snapshot().Days {
		add(d)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, key := range order {
		if err := merged.AddDay(byDate[key]); err != nil {
			return err
		}
	}
	return trace.SaveFile(path, &trace.Dataset{Machines: []*trace.Machine{merged}})
}

// QueryTR predicts the probability that this machine stays available for a
// guest job of the given length and memory footprint starting now. Under a
// sampled trace the query runs in a "state.query-tr" span; the prediction
// engine marks cache hits and misses on it.
func (sm *StateManager) QueryTR(ctx context.Context, req QueryTRReq) (QueryTRResp, error) {
	if req.LengthSeconds <= 0 {
		return QueryTRResp{}, fmt.Errorf("ishare: non-positive job length")
	}
	ctx, span := otrace.StartSpan(ctx, "state.query-tr")
	defer span.End()
	now := sm.clock.Now().UTC()
	cur := sm.CurrentState()
	if !cur.Recoverable() {
		span.AddEvent("unrecoverable-state", otrace.String("state", cur.String()))
		return QueryTRResp{TR: 0, CurrentState: cur.String()}, nil
	}
	midnight := time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, time.UTC)
	start := now.Sub(midnight).Truncate(sm.period)
	length := time.Duration(req.LengthSeconds * float64(time.Second)).Truncate(sm.period)
	if length < sm.period {
		length = sm.period
	}
	// Clip to midnight: the day-structured estimator pools same-clock
	// windows, which do not wrap (windows beyond midnight would mix day
	// types).
	if start+length > 24*time.Hour {
		length = 24*time.Hour - start
	}
	w := predict.Window{Start: start, Length: length}

	cfg := sm.predictor
	if req.GuestMemMB > 0 {
		cfg.Cfg.GuestMemMB = req.GuestMemMB
	}
	// History: same-type days strictly before today, drawn from the stable
	// snapshot so the engine can recognize repeated queries.
	today := midnight
	var days []*trace.Day
	for _, d := range sm.completedDays(today) {
		if d.Type() == trace.TypeOfDate(today) {
			days = append(days, d)
		}
	}
	if len(days) == 0 {
		// No history yet: report optimistic full availability; the
		// scheduler treats all such machines equally.
		span.AddEvent("no-history")
		resp := QueryTRResp{TR: 1, HistoryWindows: 0, CurrentState: cur.String()}
		st := sm.engine.Stats()
		resp.CacheHits, resp.CacheMisses = st.Hits, st.Misses
		sm.recordPredictions(midnight, w, cfg.Cfg, 1)
		return resp, nil
	}
	tr, err := sm.engine.PredictFromCtx(ctx, cfg, days, w, cur)
	if err != nil {
		span.SetError(err)
		return QueryTRResp{}, err
	}
	resp := QueryTRResp{TR: tr, HistoryWindows: len(days), CurrentState: cur.String()}
	st := sm.engine.Stats()
	resp.CacheHits, resp.CacheMisses = st.Hits, st.Misses
	sm.recordPredictions(midnight, w, cfg.Cfg, tr)
	return resp, nil
}

// recordPredictions registers the SMP prediction for the issued window with
// the accuracy tracker, alongside the Table 1 linear baselines (AR, BM, MA,
// ARMA, LAST) forecast from the window immediately preceding the query
// window in today's live log — the paper's Section 5 comparison, scored
// online as each window's outcome is observed by the monitor.
func (sm *StateManager) recordPredictions(midnight time.Time, w predict.Window, cfg avail.Config, smpTR float64) {
	tracker := sm.obsv.Tracker
	start := midnight.Add(w.Start)
	tracker.RecordPrediction(sm.machineID, "SMP", smpTR, start, w.Length)
	prevStart := w.Start - w.Length
	if prevStart < 0 {
		prevStart = 0
	}
	prev := sm.recorder.DayWindow(midnight, prevStart, w.Start-prevStart)
	for _, f := range sm.baselines {
		ts := predict.TimeSeries{Cfg: cfg, Fitter: f}
		survives, err := ts.PredictWindow(prev, w, sm.period)
		if err != nil {
			continue
		}
		p := 0.0
		if survives {
			p = 1
		}
		tracker.RecordPrediction(sm.machineID, f.Name(), p, start, w.Length)
	}
}
