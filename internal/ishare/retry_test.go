package ishare

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fgcs/internal/rng"
	"fgcs/internal/simclock"
)

// countingDialer fails the first failN dials with a transport-level error
// and passes the rest through to the real network.
type countingDialer struct {
	mu    sync.Mutex
	dials int
	failN int
}

func (d *countingDialer) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	d.mu.Lock()
	d.dials++
	n := d.dials
	d.mu.Unlock()
	if n <= d.failN {
		return nil, fmt.Errorf("synthetic dial failure %d", n)
	}
	return net.DialTimeout(network, addr, timeout)
}

func (d *countingDialer) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

func echoHandler(req Request) (interface{}, error) { return map[string]string{"ok": "yes"}, nil }

func TestCallerRetriesTransportErrors(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := &countingDialer{failN: 2}
	c := &Caller{
		Dialer: d,
		Retry:  RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}
	if err := c.CallRetry(context.Background(), srv.Addr(), MsgDiscover, nil, nil, time.Second); err != nil {
		t.Fatalf("CallRetry = %v, want success on 3rd attempt", err)
	}
	if d.count() != 3 {
		t.Fatalf("dials = %d, want 3 (2 failures + 1 success)", d.count())
	}
}

func TestCallerExhaustsAttempts(t *testing.T) {
	d := &countingDialer{failN: 100}
	c := &Caller{
		Dialer: d,
		Retry:  RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}
	err := c.CallRetry(context.Background(), "127.0.0.1:1", MsgDiscover, nil, nil, 100*time.Millisecond)
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if !IsTransport(err) {
		t.Fatalf("err = %v, want transport", err)
	}
	if d.count() != 3 {
		t.Fatalf("dials = %d, want exactly MaxAttempts", d.count())
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err = %v, want attempt count surfaced", err)
	}
}

func TestCallerDoesNotRetryRemoteErrors(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(Request) (interface{}, error) {
		return nil, fmt.Errorf("application says no")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := &countingDialer{}
	c := &Caller{Dialer: d, Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}}
	err = c.CallRetry(context.Background(), srv.Addr(), MsgDiscover, nil, nil, time.Second)
	if err == nil {
		t.Fatal("remote error reported success")
	}
	var re *RemoteError
	if !errors.As(err, &re) || IsTransport(err) {
		t.Fatalf("err = %v, want a non-transport RemoteError", err)
	}
	if d.count() != 1 {
		t.Fatalf("dials = %d: remote application errors must not be retried", d.count())
	}
}

func TestNilCallerMatchesPlainCall(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var c *Caller
	if err := c.CallRetry(context.Background(), srv.Addr(), MsgDiscover, nil, nil, time.Second); err != nil {
		t.Fatalf("nil caller CallRetry = %v", err)
	}
	if err := c.Call(context.Background(), srv.Addr(), MsgDiscover, nil, nil, time.Second); err != nil {
		t.Fatalf("nil caller Call = %v", err)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond, Multiplier: 2}
	jitter := rng.New(1)
	prevMax := time.Duration(0)
	for n := 1; n <= 5; n++ {
		d := p.delay(n, jitter)
		// Full delay for attempt n is min(base*mult^(n-1), max); the
		// jittered value lies in [full/2, full).
		full := 100 * time.Millisecond
		for i := 1; i < n; i++ {
			full *= 2
			if full >= 400*time.Millisecond {
				full = 400 * time.Millisecond
				break
			}
		}
		if d < full/2 || d >= full {
			t.Fatalf("delay(%d) = %v, want in [%v, %v)", n, d, full/2, full)
		}
		if full < prevMax {
			t.Fatalf("backoff cap not monotone")
		}
		prevMax = full
	}
}

// ackLossConn delivers the request but kills every read, simulating a lost
// response ACK: the server executes the RPC, the client never learns.
type ackLossConn struct{ net.Conn }

func (c *ackLossConn) Read(p []byte) (int, error) {
	// Give the server a moment to process the delivered request before
	// surfacing the loss.
	time.Sleep(10 * time.Millisecond)
	return 0, fmt.Errorf("synthetic ACK loss")
}

// ackLossDialer drops the response of the first lossN exchanges.
type ackLossDialer struct {
	mu    sync.Mutex
	dials int
	lossN int
}

func (d *ackLossDialer) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.dials++
	lossy := d.dials <= d.lossN
	d.mu.Unlock()
	if lossy {
		return &ackLossConn{Conn: c}, nil
	}
	return c, nil
}

// TestSubmitIdempotentUnderAckLoss is the acceptance test for idempotency
// keys: the first submit executes on the gateway but its ACK is lost; the
// retried submit must return the original job ID and no second guest may
// ever be launched.
func TestSubmitIdempotentUnderAckLoss(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	node := testNode(t, clock, nil)
	srv, err := node.Gateway.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	caller := &Caller{
		Dialer: &ackLossDialer{lossN: 1},
		Retry:  RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}
	api := RemoteGateway{Addr: srv.Addr(), Timeout: time.Second, Caller: caller}
	resp, err := api.Submit(context.Background(), SubmitReq{Name: "idem", WorkSeconds: 600, MemMB: 10})
	if err != nil {
		t.Fatalf("submit with retry = %v", err)
	}
	if resp.JobID == "" {
		t.Fatal("no job id")
	}
	// Exactly one guest launched: the gateway accepts a fresh submission
	// only after the current one terminates, so a double launch would have
	// surfaced as an "already runs a guest" error on the retry. Verify the
	// job counter directly too.
	st, err := node.Gateway.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" {
		t.Fatalf("job state = %s", st.State)
	}
	if resp.JobID != "lab-01-job-1" {
		t.Fatalf("job id = %s, want the first and only job", resp.JobID)
	}
	// A second logical submit (fresh key) is properly rejected while the
	// guest runs — proving the dedup keyed on the idempotency key, not on
	// blanket submit suppression.
	if _, err := api.Submit(context.Background(), SubmitReq{Name: "other", WorkSeconds: 60}); err == nil {
		t.Fatal("second logical submit accepted while a guest runs")
	}
}

// TestSubmitSingleAttemptWithoutKey pins the default: without a retrying
// caller, a submit gets exactly one attempt and a transport failure is
// surfaced, never silently retried.
func TestSubmitSingleAttemptWithoutKey(t *testing.T) {
	d := &countingDialer{failN: 100}
	api := RemoteGateway{Addr: "127.0.0.1:1", Timeout: 100 * time.Millisecond,
		Caller: &Caller{Dialer: d}}
	if _, err := api.Submit(context.Background(), SubmitReq{Name: "x", WorkSeconds: 60}); err == nil {
		t.Fatal("submit succeeded against dead dialer")
	}
	if d.count() != 1 {
		t.Fatalf("dials = %d, want 1 (no retry without idempotency protection)", d.count())
	}
}

func TestServerMaxRequestBytes(t *testing.T) {
	srv, err := NewServerConfig("127.0.0.1:0", echoHandler, ServerConfig{MaxRequestBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A request far over the cap: the server must answer with a bounded
	// error instead of buffering it.
	huge := `{"type":"discover","payload":"` + strings.Repeat("x", 4096) + `"}` + "\n"
	if _, err := conn.Write([]byte(huge)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "request too large") {
		t.Fatalf("response = %q, want request-too-large", buf[:n])
	}
}

func TestServerConnDeadlineConfigurable(t *testing.T) {
	srv, err := NewServerConfig("127.0.0.1:0", echoHandler, ServerConfig{ConnDeadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A slow client that sends nothing: the server must hang up at the
	// deadline rather than holding the connection open.
	deadline := time.Now().Add(2 * time.Second)
	buf := make([]byte, 64)
	_ = conn.SetReadDeadline(deadline)
	if _, err := conn.Read(buf); err == nil {
		// The server wrote something without a request — also a close
		// signal; drain to EOF.
		if _, err := conn.Read(buf); err == nil {
			t.Fatal("connection still open well past the configured deadline")
		}
	}
	if time.Now().After(deadline) {
		t.Fatal("server held the connection past the configured deadline")
	}
}

// errListener fails the first failN accepts, then hands out one real
// connection from the inner listener.
type errListener struct {
	net.Listener
	mu      sync.Mutex
	fails   int
	failN   int
	accepts []time.Time
}

func (l *errListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	l.accepts = append(l.accepts, time.Now())
	fail := l.fails < l.failN
	if fail {
		l.fails++
	}
	l.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("synthetic accept failure")
	}
	return l.Listener.Accept()
}

// TestAcceptLoopBacksOff pins the fix for accept-loop hot-spinning: repeated
// transient Accept errors must be paced by a growing delay, and the server
// must still serve once Accept recovers.
func TestAcceptLoopBacksOff(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	el := &errListener{Listener: inner, failN: 4}
	srv := ServeListener(el, echoHandler, ServerConfig{AcceptBackoffMax: 20 * time.Millisecond})
	defer srv.Close()

	start := time.Now()
	if err := Call(srv.Addr(), MsgDiscover, nil, nil, 2*time.Second); err != nil {
		t.Fatalf("call after transient accept failures = %v", err)
	}
	// 4 failures with backoff 5,10,20,20 ms = at least ~55 ms of pacing.
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("accept loop recovered in %v: transient errors were not backed off", elapsed)
	}
	el.mu.Lock()
	defer el.mu.Unlock()
	if len(el.accepts) < 5 {
		t.Fatalf("accepts = %d, want the loop to keep trying", len(el.accepts))
	}
}

// TestNextKeyDistinctAcrossCallers is the regression test for a live bug:
// gateways remember idempotency keys for their whole lifetime, so two
// client processes with bare-counter keys would collide and the second
// would silently receive the first one's job.
func TestNextKeyDistinctAcrossCallers(t *testing.T) {
	a := (&Caller{}).NextKey("gw:1")
	b := (&Caller{}).NextKey("gw:1")
	if a == b {
		t.Fatalf("two fresh callers produced the same key %q", a)
	}
	// With a pinned seed the sequence is reproducible (chaos-test runs
	// depend on this) and key lengths match the random form.
	s1 := (&Caller{JitterSeed: 9}).NextKey("gw:1")
	s2 := (&Caller{JitterSeed: 9}).NextKey("gw:1")
	if s1 != s2 {
		t.Fatalf("seeded callers diverged: %q vs %q", s1, s2)
	}
	if len(s1) != len(a) {
		t.Fatalf("seeded key %q and random key %q differ in length", s1, a)
	}
}
