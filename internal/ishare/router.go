package ishare

import (
	"sort"
	"sync"

	"fgcs/internal/obs"
	"fgcs/internal/predict"
)

// RouterConfig tunes the ensemble router's selection rule and hysteresis.
// The zero value selects the defaults documented on each field.
type RouterConfig struct {
	// Predictors is the candidate set, by registered plugin name. Empty
	// selects every registered plugin (predict.PluginNames()). The list is
	// sorted at construction so ties always break toward the
	// lexicographically smallest name, independent of caller order.
	Predictors []string
	// MinSamples is how many rolling resolved predictions a predictor
	// needs on a machine before it may be routed to (default 16). Below
	// it, scores are noise — the router stays on the fallback.
	MinSamples int
	// MinDwell is the hysteresis dwell: at least this many predictions
	// must resolve on a machine between routing switches (default 32).
	// The dwell clock is the cumulative resolved count, so it keeps
	// ticking after the rolling window saturates.
	MinDwell int
	// Margin is the hysteresis margin: a challenger must beat the
	// incumbent's rolling Brier score by at least this much to take over
	// (default 0.02). Negative selects exactly zero margin.
	Margin float64
	// Fallback is the predictor served while scores are thin (default
	// "SMP", the paper's estimator).
	Fallback string
}

// routerDefaults fills zero RouterConfig fields.
func (c RouterConfig) withDefaults() RouterConfig {
	if len(c.Predictors) == 0 {
		c.Predictors = predict.PluginNames()
	} else {
		c.Predictors = append([]string(nil), c.Predictors...)
		sort.Strings(c.Predictors)
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 32
	}
	if c.Margin == 0 {
		c.Margin = 0.02
	} else if c.Margin < 0 {
		c.Margin = 0
	}
	if c.Fallback == "" {
		c.Fallback = "SMP"
	}
	return c
}

// routeState is one machine's routing memory: the predictor currently
// serving it and the cumulative resolved count at the last switch (the
// dwell anchor).
type routeState struct {
	current   string
	dwellMark uint64
}

// Router is the ensemble control loop: per machine, it serves QueryTR with
// the predictor holding the best rolling Brier score in the accuracy
// tracker, with hysteresis (minimum dwell between switches, margin to
// unseat the incumbent) so routing is stable, and a fallback while scores
// are thin.
//
// Routing is deterministic under a fixed seed because every decision is a
// pure function of (tracker state, this machine's routing memory): the
// candidate list is sorted, ties break toward the smaller name, and the
// dwell clock is the tracker's cumulative resolved count rather than a
// query counter. Tracker state only advances when the monitor feeds
// samples, so concurrent queries between samples all evaluate the same
// frozen scores and reach the same decision regardless of interleaving —
// the property the fleetsim transcript hash pins at 100k-machine scale.
type Router struct {
	cfg     RouterConfig
	tracker *obs.Tracker

	mu       sync.Mutex
	state    map[string]*routeState
	served   map[string]uint64
	switches uint64
	scoreBuf []obs.RouteScore // reused under mu: Route allocates nothing at steady state

	cDecisions *obs.Counter
	cSwitches  *obs.Counter
}

// NewRouter builds an ensemble router reading scores from the tracker.
func NewRouter(tracker *obs.Tracker, cfg RouterConfig) *Router {
	c := cfg.withDefaults()
	return &Router{
		cfg:      c,
		tracker:  tracker,
		state:    make(map[string]*routeState),
		served:   make(map[string]uint64, len(c.Predictors)),
		scoreBuf: make([]obs.RouteScore, len(c.Predictors)),
	}
}

// SetMetrics attaches the routing counters (decisions and switches); nil
// detaches. Call before queries flow.
func (r *Router) SetMetrics(decisions, switches *obs.Counter) {
	r.mu.Lock()
	r.cDecisions, r.cSwitches = decisions, switches
	r.mu.Unlock()
}

// Predictors returns the sorted candidate set.
func (r *Router) Predictors() []string { return r.cfg.Predictors }

// Config returns the effective configuration (defaults applied).
func (r *Router) Config() RouterConfig { return r.cfg }

// Route returns the predictor that should serve the machine's next query,
// updating the routing memory and the served/switch counters.
func (r *Router) Route(machine string) string {
	r.mu.Lock()
	rs := r.state[machine]
	if rs == nil {
		rs = &routeState{current: r.cfg.Fallback}
		r.state[machine] = rs
	}
	// Candidate scores under one tracker lock (nested inside r.mu; nothing
	// takes the locks in the other order).
	r.tracker.RouteScores(machine, r.cfg.Predictors, r.scoreBuf)
	best, bestBrier := "", 0.0
	var resolved uint64
	incumbentN := 0
	incumbentBrier := 0.0
	for i, name := range r.cfg.Predictors {
		s := r.scoreBuf[i]
		resolved += s.Resolved
		if name == rs.current {
			incumbentBrier, incumbentN = s.Brier, s.N
		}
		if s.N < r.cfg.MinSamples {
			continue
		}
		// Strict less keeps the first (lexicographically smallest) name
		// on ties — the list is sorted.
		if best == "" || s.Brier < bestBrier {
			best, bestBrier = name, s.Brier
		}
	}
	switched := false
	if best != "" && best != rs.current && resolved >= rs.dwellMark+uint64(r.cfg.MinDwell) {
		// An incumbent without enough samples (the initial fallback, or a
		// predictor whose machine was evicted and re-tracked) is unseated
		// without a margin contest.
		if incumbentN < r.cfg.MinSamples || bestBrier <= incumbentBrier-r.cfg.Margin {
			rs.current = best
			rs.dwellMark = resolved
			r.switches++
			switched = true
		}
	}
	r.served[rs.current]++
	cur := rs.current
	cDec, cSw := r.cDecisions, r.cSwitches
	r.mu.Unlock()
	if cDec != nil {
		cDec.Inc()
	}
	if switched && cSw != nil {
		cSw.Inc()
	}
	return cur
}

// Snapshot returns the router's served/switch counters for query-stats and
// the fleetsim report.
func (r *Router) Snapshot() RoutingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	served := make(map[string]uint64, len(r.served))
	for name, n := range r.served {
		served[name] = n
	}
	return RoutingStats{
		Predictors: append([]string(nil), r.cfg.Predictors...),
		Served:     served,
		Switches:   r.switches,
		Machines:   len(r.state),
	}
}
