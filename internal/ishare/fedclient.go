package ishare

import (
	"context"
	"fmt"
	"time"
)

// FedClient talks to a federated control plane through any single peer:
// the entry peer resolves each machine through the ring and forwards as
// needed, so clients never need to know the shard placement. The zero
// Timeout means 5 s per call; Caller supplies transport, retries and
// trace propagation exactly as for RemoteGateway.
type FedClient struct {
	// Addr is the entry peer. Any live peer works; clients spread across
	// peers for load, or fail over to another peer themselves if their
	// entry peer dies.
	Addr    string
	Timeout time.Duration
	Caller  *Caller
}

func (c FedClient) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 5 * time.Second
	}
	return c.Timeout
}

// QueryTR asks the federation for the named machine's temporal
// reliability. Idempotent: retried under the caller's policy.
func (c FedClient) QueryTR(ctx context.Context, machine string, req QueryTRReq) (QueryTRResp, error) {
	var resp QueryTRResp
	err := c.Caller.CallRetry(ctx, c.Addr, MsgFedQueryTR, FedQueryTRReq{Machine: machine, Query: req}, &resp, c.timeout())
	return resp, err
}

// Submit launches a guest job on the named machine through the
// federation. When the caller has retries configured, a fresh idempotency
// key is attached (unless the request already carries one) so the submit
// is replay-safe across the client hop, the peer hop, and the machine
// hop; without retries it gets a single attempt.
func (c FedClient) Submit(ctx context.Context, machine string, req SubmitReq) (SubmitResp, error) {
	var resp SubmitResp
	fed := FedSubmitReq{Machine: machine, Job: req}
	if c.Caller != nil && c.Caller.Retry.MaxAttempts > 1 {
		if fed.Job.IdempotencyKey == "" {
			fed.Job.IdempotencyKey = c.Caller.NextKey("fed/" + machine)
		}
		err := c.Caller.CallRetry(ctx, c.Addr, MsgFedSubmit, fed, &resp, c.timeout())
		return resp, err
	}
	err := c.Caller.Call(ctx, c.Addr, MsgFedSubmit, fed, &resp, c.timeout())
	return resp, err
}

// JobStatus queries a job on the named machine. Idempotent: retried under
// the caller's policy.
func (c FedClient) JobStatus(ctx context.Context, machine string, req JobStatusReq) (JobStatusResp, error) {
	var resp JobStatusResp
	err := c.Caller.CallRetry(ctx, c.Addr, MsgFedJobStatus, FedJobReq{Machine: machine, Job: req}, &resp, c.timeout())
	return resp, err
}

// Kill terminates a job on the named machine. Single attempt end to end
// (see FedGateway.FedKill); confirm a lost ACK with JobStatus.
func (c FedClient) Kill(ctx context.Context, machine string, req JobStatusReq) (JobStatusResp, error) {
	var resp JobStatusResp
	err := c.Caller.Call(ctx, c.Addr, MsgFedKill, FedJobReq{Machine: machine, Job: req}, &resp, c.timeout())
	return resp, err
}

// Discover lists every machine registered anywhere in the federation (the
// entry peer merges all reachable shards).
func (c FedClient) Discover(ctx context.Context) ([]Resource, error) {
	var resp DiscoverResp
	err := c.Caller.CallRetry(ctx, c.Addr, MsgDiscover, DiscoverReq{}, &resp, c.timeout())
	return resp.Resources, err
}

// Rank asks the entry peer for a federation-wide TR ranking for a
// prospective job.
func (c FedClient) Rank(ctx context.Context, job SubmitReq) (FedRankResp, error) {
	var resp FedRankResp
	req := FedRankReq{LengthSeconds: job.WorkSeconds, GuestMemMB: job.MemMB}
	err := c.Caller.CallRetry(ctx, c.Addr, MsgFedRank, req, &resp, c.timeout())
	return resp, err
}

// SubmitBest ranks the federation and submits to the most reliable
// machine, falling down the ranking when a launch is rejected — the
// federated twin of Scheduler.SubmitBest.
func (c FedClient) SubmitBest(ctx context.Context, job SubmitReq) (FedRanked, SubmitResp, error) {
	ranking, err := c.Rank(ctx, job)
	if err != nil {
		return FedRanked{}, SubmitResp{}, err
	}
	if len(ranking.Ranked) == 0 {
		return FedRanked{}, SubmitResp{}, fmt.Errorf("ishare: no machine answered the ranking (%d failures)", len(ranking.Failures))
	}
	var lastErr error
	for _, cand := range ranking.Ranked {
		resp, err := c.Submit(ctx, cand.MachineID, job)
		if err == nil {
			return cand, resp, nil
		}
		lastErr = err
	}
	return FedRanked{}, SubmitResp{}, fmt.Errorf("ishare: every ranked machine rejected the job: %w", lastErr)
}

// Gateway returns a GatewayAPI view of one machine reached through the
// federation, so schedulers and supervisors built against single-gateway
// clients work unchanged on a federated deployment.
func (c FedClient) Gateway(machine string) GatewayAPI {
	return fedGatewayAPI{c: c, machine: machine}
}

// Scheduler builds a client-side Scheduler whose candidates are every
// machine in the federation, each reached through the entry peer.
func (c FedClient) Scheduler(ctx context.Context) (*Scheduler, error) {
	resources, err := c.Discover(ctx)
	if err != nil {
		return nil, err
	}
	if len(resources) == 0 {
		return nil, fmt.Errorf("ishare: federation has no machines")
	}
	cands := make([]Candidate, 0, len(resources))
	for _, r := range resources {
		cands = append(cands, Candidate{MachineID: r.MachineID, API: c.Gateway(r.MachineID)})
	}
	return &Scheduler{Candidates: cands}, nil
}

// fedGatewayAPI adapts FedClient to the machine-scoped GatewayAPI.
type fedGatewayAPI struct {
	c       FedClient
	machine string
}

func (a fedGatewayAPI) QueryTR(ctx context.Context, req QueryTRReq) (QueryTRResp, error) {
	return a.c.QueryTR(ctx, a.machine, req)
}

func (a fedGatewayAPI) Submit(ctx context.Context, req SubmitReq) (SubmitResp, error) {
	return a.c.Submit(ctx, a.machine, req)
}

func (a fedGatewayAPI) JobStatus(ctx context.Context, req JobStatusReq) (JobStatusResp, error) {
	return a.c.JobStatus(ctx, a.machine, req)
}

func (a fedGatewayAPI) Kill(ctx context.Context, req JobStatusReq) (JobStatusResp, error) {
	return a.c.Kill(ctx, a.machine, req)
}
