package ishare

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fgcs/internal/simclock"
)

// stubMachine is a minimal host-gateway stand-in: deterministic TR,
// idempotency-keyed submits, canned job status. It lets federation tests
// exercise routing without spinning full prediction stacks.
type stubMachine struct {
	id  string
	tr  float64
	srv *Server

	mu      sync.Mutex
	submits map[string]string
	nextJob int
	lastKey string
	queries int
}

func newStubMachine(t *testing.T, id string, tr float64) *stubMachine {
	t.Helper()
	m := &stubMachine{id: id, tr: tr, submits: make(map[string]string)}
	srv, err := NewServer("127.0.0.1:0", m.handler)
	if err != nil {
		t.Fatalf("stub machine %s: %v", id, err)
	}
	m.srv = srv
	t.Cleanup(func() { srv.Close() })
	return m
}

func (m *stubMachine) addr() string { return m.srv.Addr() }

func (m *stubMachine) handler(req Request) (interface{}, error) {
	switch req.Type {
	case MsgQueryTR:
		m.mu.Lock()
		m.queries++
		m.mu.Unlock()
		return QueryTRResp{TR: m.tr, HistoryWindows: 7, CurrentState: "S1"}, nil
	case MsgSubmit:
		var s SubmitReq
		if err := json.Unmarshal(req.Payload, &s); err != nil {
			return nil, fmt.Errorf("malformed submit")
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		m.lastKey = s.IdempotencyKey
		if s.IdempotencyKey != "" {
			if id, ok := m.submits[s.IdempotencyKey]; ok {
				return SubmitResp{JobID: id}, nil
			}
		}
		m.nextJob++
		id := fmt.Sprintf("%s-job-%d", m.id, m.nextJob)
		if s.IdempotencyKey != "" {
			m.submits[s.IdempotencyKey] = id
		}
		return SubmitResp{JobID: id}, nil
	case MsgJobStatus:
		var s JobStatusReq
		if err := json.Unmarshal(req.Payload, &s); err != nil {
			return nil, fmt.Errorf("malformed status")
		}
		return JobStatusResp{JobID: s.JobID, State: "running", WorkSeconds: 10}, nil
	case MsgKillJob:
		var s JobStatusReq
		if err := json.Unmarshal(req.Payload, &s); err != nil {
			return nil, fmt.Errorf("malformed kill")
		}
		return JobStatusResp{JobID: s.JobID, State: "killed"}, nil
	default:
		return nil, fmt.Errorf("stub: unknown request type %q", req.Type)
	}
}

// handlerCell breaks the server/gateway construction cycle: servers must
// bind before peer addresses are known, so they start with an empty cell
// that is filled once every FedGateway exists.
type handlerCell struct {
	mu sync.RWMutex
	h  Handler
}

func (c *handlerCell) set(h Handler) {
	c.mu.Lock()
	c.h = h
	c.mu.Unlock()
}

func (c *handlerCell) handle(req Request) (interface{}, error) {
	c.mu.RLock()
	h := c.h
	c.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("fed peer not ready")
	}
	return h(req)
}

type fedNode struct {
	gw  *FedGateway
	srv *Server
}

// buildFederation starts n federation peers (fed0..fedN-1) on loopback
// with the given replica count and a shared clock, wired with tight retry
// backoff so dead-peer failover is fast in tests.
func buildFederation(t *testing.T, n, replicas int, clock simclock.Clock) []*fedNode {
	t.Helper()
	return buildFederationWith(t, n, replicas, clock, nil)
}

// buildFederationWith is buildFederation with a per-peer config hook
// (tracers, breakers, fault-injecting dialers).
func buildFederationWith(t *testing.T, n, replicas int, clock simclock.Clock, mutate func(i int, cfg *FedConfig)) []*fedNode {
	t.Helper()
	cells := make([]*handlerCell, n)
	servers := make([]*Server, n)
	for i := range servers {
		cells[i] = &handlerCell{}
		srv, err := NewServer("127.0.0.1:0", cells[i].handle)
		if err != nil {
			t.Fatalf("fed server %d: %v", i, err)
		}
		servers[i] = srv
		t.Cleanup(func() { srv.Close() })
	}
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{ID: fmt.Sprintf("fed%d", i), Addr: servers[i].Addr()}
	}
	nodes := make([]*fedNode, n)
	for i := range nodes {
		cfg := FedConfig{
			Self:     peers[i],
			Peers:    peers,
			Replicas: replicas,
			Caller: &Caller{
				Retry:      RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
				JitterSeed: uint64(1000 + i),
			},
			Timeout: 2 * time.Second,
			Clock:   clock,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		gw, err := NewFedGateway(cfg)
		if err != nil {
			t.Fatalf("fed gateway %d: %v", i, err)
		}
		cells[i].set(gw.Handler())
		nodes[i] = &fedNode{gw: gw, srv: servers[i]}
	}
	return nodes
}

// fedRegister registers a machine through the given peer over the wire,
// exactly as a host node's heartbeat would.
func fedRegister(t *testing.T, peerAddr, machine, machineAddr string, ttl time.Duration) {
	t.Helper()
	caller := &Caller{}
	reg := RegisterReq{MachineID: machine, Addr: machineAddr, TTLSeconds: ttl.Seconds()}
	if err := caller.Call(context.Background(), peerAddr, MsgRegister, reg, nil, 2*time.Second); err != nil {
		t.Fatalf("register %s via %s: %v", machine, peerAddr, err)
	}
}

// pickPeer returns the index of a peer matching (or not matching) the
// candidate set of a machine.
func pickPeer(t *testing.T, nodes []*fedNode, machine string, inCandidates bool) int {
	t.Helper()
	cands := map[string]bool{}
	for _, p := range nodes[0].gw.Candidates(machine) {
		cands[p.ID] = true
	}
	for i, n := range nodes {
		if cands[n.gw.Self().ID] == inCandidates {
			return i
		}
	}
	t.Fatalf("no peer with inCandidates=%v for %s", inCandidates, machine)
	return -1
}

func TestFedRegisterRoutesToOwnerAndReplicates(t *testing.T) {
	nodes := buildFederation(t, 4, 1, nil)
	machine := newStubMachine(t, "m-route", 0.9)

	entry := pickPeer(t, nodes, "m-route", false) // a non-candidate peer
	fedRegister(t, nodes[entry].srv.Addr(), "m-route", machine.addr(), 0)

	cands := map[string]bool{}
	for _, p := range nodes[0].gw.Candidates("m-route") {
		cands[p.ID] = true
	}
	if len(cands) != 2 {
		t.Fatalf("candidate set size = %d, want 2 (owner + 1 replica)", len(cands))
	}
	for _, n := range nodes {
		_, ok := n.gw.lookup("m-route")
		if want := cands[n.gw.Self().ID]; ok != want {
			t.Errorf("peer %s holds entry = %v, want %v", n.gw.Self().ID, ok, want)
		}
	}

	// A query entering at a non-candidate peer is forwarded and answered.
	fc := FedClient{Addr: nodes[entry].srv.Addr(), Caller: &Caller{}}
	resp, err := fc.QueryTR(context.Background(), "m-route", QueryTRReq{LengthSeconds: 3600})
	if err != nil {
		t.Fatalf("federated QueryTR: %v", err)
	}
	if resp.TR != 0.9 || resp.CurrentState != "S1" {
		t.Errorf("QueryTR = %+v, want TR 0.9 in S1", resp)
	}
	if st := nodes[entry].gw.RingStats(); st.Forwarded == 0 {
		t.Errorf("entry peer forwarded counter = 0, want > 0")
	}
}

// TestFedReplicaFailoverUntilTTL is the ISSUE's replica-failover check: a
// registry entry survives the owner gateway's death — queries reroute to a
// replica — until its TTL expires.
func TestFedReplicaFailoverUntilTTL(t *testing.T) {
	clock := simclock.NewVirtual(time.Date(2005, 8, 22, 8, 0, 0, 0, time.UTC))
	nodes := buildFederation(t, 3, 1, clock)
	machine := newStubMachine(t, "m-failover", 0.75)

	cands := nodes[0].gw.Candidates("m-failover")
	if len(cands) != 2 {
		t.Fatalf("candidate set size = %d, want 2", len(cands))
	}
	var owner *fedNode
	for _, n := range nodes {
		if n.gw.Self().ID == cands[0].ID {
			owner = n
		}
	}
	fedRegister(t, owner.srv.Addr(), "m-failover", machine.addr(), 90*time.Second)

	// Kill the owner. The entry must survive on the replica.
	owner.srv.Close()

	entry := pickPeer(t, nodes, "m-failover", false)
	fc := FedClient{
		Addr: nodes[entry].srv.Addr(),
		Caller: &Caller{
			Retry:      RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
			JitterSeed: 7,
		},
	}
	resp, err := fc.QueryTR(context.Background(), "m-failover", QueryTRReq{LengthSeconds: 1800})
	if err != nil {
		t.Fatalf("QueryTR after owner death: %v", err)
	}
	if resp.TR != 0.75 {
		t.Errorf("QueryTR after owner death TR = %v, want 0.75", resp.TR)
	}

	// Past the TTL the replica must stop serving the dead registration.
	clock.Advance(91 * time.Second)
	if _, err := fc.QueryTR(context.Background(), "m-failover", QueryTRReq{LengthSeconds: 1800}); err == nil {
		t.Fatal("QueryTR succeeded after TTL expiry; want failure")
	}
}

func TestFedSubmitIdempotencyKeyAttachedAtEntry(t *testing.T) {
	nodes := buildFederation(t, 3, 2, nil)
	machine := newStubMachine(t, "m-submit", 0.8)
	fedRegister(t, nodes[0].srv.Addr(), "m-submit", machine.addr(), 0)

	// Enter via a non-owner peer (with K=2 on three peers everyone holds a
	// replica, so the interesting property is the key attachment itself).
	owner := nodes[0].gw.Candidates("m-submit")[0].ID
	entry := 0
	for i, n := range nodes {
		if n.gw.Self().ID != owner {
			entry = i
			break
		}
	}
	fc := FedClient{Addr: nodes[entry].srv.Addr(), Caller: &Caller{}}
	resp, err := fc.Submit(context.Background(), "m-submit", SubmitReq{Name: "guest", WorkSeconds: 100})
	if err != nil {
		t.Fatalf("federated submit: %v", err)
	}
	if resp.JobID == "" {
		t.Fatal("federated submit returned empty job id")
	}
	machine.mu.Lock()
	key := machine.lastKey
	machine.mu.Unlock()
	if key == "" {
		t.Error("submit reached the machine without an idempotency key; the entry peer should attach one")
	}

	// Replaying the same key through a different peer must return the
	// original job, not launch a second guest.
	other := (entry + 1) % len(nodes)
	fc2 := FedClient{Addr: nodes[other].srv.Addr(), Caller: &Caller{}}
	again, err := fc2.Submit(context.Background(), "m-submit", SubmitReq{Name: "guest", WorkSeconds: 100, IdempotencyKey: key})
	if err != nil {
		t.Fatalf("replayed submit: %v", err)
	}
	if again.JobID != resp.JobID {
		t.Errorf("replayed submit job = %s, want original %s", again.JobID, resp.JobID)
	}
}

func TestFedRankMergesAllShards(t *testing.T) {
	nodes := buildFederation(t, 4, -1, nil) // replicas < 0: no replication, shards disjoint
	trs := map[string]float64{"rank-a": 0.95, "rank-b": 0.55, "rank-c": 0.75, "rank-d": 0.15}
	for id, tr := range trs {
		m := newStubMachine(t, id, tr)
		fedRegister(t, nodes[0].srv.Addr(), id, m.addr(), 0)
	}
	// Shards must actually be disjoint for the test to mean anything.
	total := 0
	for _, n := range nodes {
		total += len(n.gw.localResources())
	}
	if total != len(trs) {
		t.Fatalf("entries across peers = %d, want %d (no replication)", total, len(trs))
	}

	fc := FedClient{Addr: nodes[3].srv.Addr(), Caller: &Caller{}}
	ranking, err := fc.Rank(context.Background(), SubmitReq{WorkSeconds: 3600})
	if err != nil {
		t.Fatalf("federated rank: %v", err)
	}
	if len(ranking.Failures) != 0 {
		t.Fatalf("rank failures: %v", ranking.Failures)
	}
	want := []string{"rank-a", "rank-c", "rank-b", "rank-d"}
	if len(ranking.Ranked) != len(want) {
		t.Fatalf("ranked %d machines, want %d", len(ranking.Ranked), len(want))
	}
	for i, id := range want {
		if ranking.Ranked[i].MachineID != id {
			t.Errorf("rank[%d] = %s (TR %v), want %s", i, ranking.Ranked[i].MachineID, ranking.Ranked[i].TR, id)
		}
	}

	// SubmitBest lands on the top-ranked machine.
	cand, sub, err := fc.SubmitBest(context.Background(), SubmitReq{Name: "best", WorkSeconds: 60})
	if err != nil {
		t.Fatalf("SubmitBest: %v", err)
	}
	if cand.MachineID != "rank-a" || !strings.HasPrefix(sub.JobID, "rank-a-job-") {
		t.Errorf("SubmitBest placed on %s (job %s), want rank-a", cand.MachineID, sub.JobID)
	}
}

// TestFedLocalRequestIsNeverReforwarded pins the loop-prevention rule: a
// request already marked Local must be served from the receiving peer's
// shard or rejected — never forwarded again.
func TestFedLocalRequestIsNeverReforwarded(t *testing.T) {
	nodes := buildFederation(t, 2, -1, nil)
	machine := newStubMachine(t, "m-local", 0.5)
	fedRegister(t, nodes[0].srv.Addr(), "m-local", machine.addr(), 0)

	var holder, other *fedNode
	for _, n := range nodes {
		if _, ok := n.gw.lookup("m-local"); ok {
			holder = n
		} else {
			other = n
		}
	}
	if holder == nil || other == nil {
		t.Fatal("expected exactly one peer to hold the entry")
	}

	caller := &Caller{}
	var resp QueryTRResp
	req := FedQueryTRReq{Machine: "m-local", Local: true, Query: QueryTRReq{LengthSeconds: 60}}
	err := caller.Call(context.Background(), other.srv.Addr(), MsgFedQueryTR, req, &resp, 2*time.Second)
	if err == nil {
		t.Fatal("local-marked request for a foreign machine succeeded; it must not be re-forwarded")
	}
	if !isUnknownMachine(err) {
		t.Errorf("err = %v, want an unknown-machine rejection", err)
	}
	if st := other.gw.RingStats(); st.Forwarded != 0 {
		t.Errorf("peer forwarded a local-marked request (forwarded=%d)", st.Forwarded)
	}
}

func TestFedSyncOnceHealsRestartedPeer(t *testing.T) {
	nodes := buildFederation(t, 3, 2, nil)
	machine := newStubMachine(t, "m-heal", 0.6)
	fedRegister(t, nodes[0].srv.Addr(), "m-heal", machine.addr(), 0)

	// Simulate an amnesiac restart: wipe one candidate's shard.
	victim := pickPeer(t, nodes, "m-heal", true)
	nodes[victim].gw.mu.Lock()
	nodes[victim].gw.entries = make(map[string]fedEntry)
	nodes[victim].gw.mu.Unlock()
	if _, ok := nodes[victim].gw.lookup("m-heal"); ok {
		t.Fatal("victim still holds the entry after wipe")
	}

	// One anti-entropy round from any other candidate repairs it.
	for i, n := range nodes {
		if i != victim {
			n.gw.SyncOnce(context.Background())
		}
	}
	if _, ok := nodes[victim].gw.lookup("m-heal"); !ok {
		t.Error("anti-entropy did not restore the wiped entry")
	}
	st := nodes[victim].gw.RingStats()
	if st.SyncAccepted == 0 {
		t.Errorf("victim sync_accepted = 0, want > 0")
	}
	found := false
	for _, row := range st.Peers {
		if !row.Self && row.LastSyncAgeSeconds >= 0 {
			found = true
		}
	}
	if !found {
		t.Error("ring stats report no peer with a recorded sync age")
	}
}

func TestFedQueryStatsCarriesRing(t *testing.T) {
	nodes := buildFederation(t, 3, 1, nil)
	machine := newStubMachine(t, "m-stats", 0.4)
	fedRegister(t, nodes[0].srv.Addr(), "m-stats", machine.addr(), 0)

	rg := RemoteGateway{Addr: nodes[0].srv.Addr(), Caller: &Caller{}}
	st, err := rg.QueryStats(context.Background(), QueryStatsReq{})
	if err != nil {
		t.Fatalf("query-stats against fed peer: %v", err)
	}
	if st.Ring == nil {
		t.Fatal("query-stats from a federation peer lacks ring state")
	}
	if st.Ring.Self != "fed0" || st.Ring.Replicas != 1 || st.Ring.Vnodes != DefaultVnodes {
		t.Errorf("ring header = %+v, want self=fed0 replicas=1 vnodes=%d", st.Ring, DefaultVnodes)
	}
	if len(st.Ring.Peers) != 3 {
		t.Errorf("ring peers = %d, want 3", len(st.Ring.Peers))
	}
	ownedTotal := 0
	for _, row := range st.Ring.Peers {
		ownedTotal += row.OwnedEntries
	}
	if holderHas := st.Ring.Entries; holderHas > 0 && ownedTotal != holderHas {
		t.Errorf("owned-entries sum %d != entries %d", ownedTotal, holderHas)
	}

	// A plain registry answer must NOT carry ring state (field is fed-only).
	reg := NewRegistry()
	srv, err := NewServer("127.0.0.1:0", reg.Handler())
	if err != nil {
		t.Fatalf("registry server: %v", err)
	}
	defer srv.Close()
	var dr DiscoverResp
	if err := (&Caller{}).Call(context.Background(), srv.Addr(), MsgDiscover, DiscoverReq{}, &dr, time.Second); err != nil {
		t.Fatalf("registry discover with payload: %v", err)
	}
}

func TestFedGatewayConfigValidation(t *testing.T) {
	peers := []Peer{{ID: "a", Addr: "a:1"}, {ID: "b", Addr: "b:1"}}
	cases := []struct {
		name string
		cfg  FedConfig
	}{
		{"missing self", FedConfig{Peers: peers}},
		{"self not listed", FedConfig{Self: Peer{ID: "c", Addr: "c:1"}, Peers: peers}},
		{"no peers", FedConfig{Self: peers[0]}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewFedGateway(tc.cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
	// Replica count is capped at the peer count.
	gw, err := NewFedGateway(FedConfig{Self: peers[0], Peers: peers, Replicas: 5})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if got := len(gw.Candidates("anything")); got != 2 {
		t.Errorf("candidates = %d, want 2 (replicas capped at peers-1)", got)
	}
}
