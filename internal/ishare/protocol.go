// Package ishare implements the FGCS runtime of Section 5 (Figure 2): the
// iShare gateway that controls guest processes on a host node, the state
// manager that stores history logs and answers temporal-reliability queries,
// the resource-publication registry (standing in for the paper's P2P
// network), and the client-side job scheduler that selects machines by
// predicted availability and submits guest jobs.
//
// Daemons speak a line-delimited JSON protocol over TCP; all components can
// also be wired in-process for simulations and tests.
package ishare

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fgcs/internal/obs"
	"fgcs/internal/otrace"
)

// Message types.
const (
	MsgRegister    = "register"     // gateway -> registry
	MsgDiscover    = "discover"     // client -> registry
	MsgQueryTR     = "query-tr"     // client -> gateway
	MsgSubmit      = "submit"       // client -> gateway
	MsgJobStatus   = "job-status"   // client -> gateway
	MsgKillJob     = "kill-job"     // client -> gateway
	MsgQueryStats  = "query-stats"  // client -> gateway
	MsgQueryTraces = "query-traces" // client -> gateway
)

// TraceHeader is the optional trace-context carried in a request envelope:
// the wire form of an otrace.Link. It is strictly additive — peers that
// predate it ignore the field, and its absence means "untraced request" —
// so old and new daemons interoperate in either direction.
type TraceHeader struct {
	// TraceID and SpanID are fixed-width hex (otrace ID string form).
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id,omitempty"`
	// Sampled tells the server whether to record its side of the trace.
	Sampled bool `json:"sampled,omitempty"`
}

// Link decodes the header into an otrace link. Malformed IDs degrade to the
// zero link (untraced) rather than failing the request.
func (h *TraceHeader) Link() otrace.Link {
	if h == nil {
		return otrace.Link{}
	}
	tid, err := otrace.ParseTraceID(h.TraceID)
	if err != nil {
		return otrace.Link{}
	}
	sid, _ := otrace.ParseSpanID(h.SpanID)
	return otrace.Link{TraceID: tid, SpanID: sid, Sampled: h.Sampled}
}

// headerFromLink encodes a span link as a wire header (nil for the zero
// link, which keeps untraced requests byte-identical to the old protocol).
func headerFromLink(link otrace.Link) *TraceHeader {
	if link.TraceID == 0 {
		return nil
	}
	return &TraceHeader{
		TraceID: link.TraceID.String(),
		SpanID:  link.SpanID.String(),
		Sampled: link.Sampled,
	}
}

// Request is the protocol envelope: one request per connection, one
// response back.
type Request struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Trace is the optional trace-context header (absent on untraced
	// requests and on requests from peers that predate tracing).
	Trace *TraceHeader `json:"trace,omitempty"`
}

// Response is the reply envelope.
type Response struct {
	OK      bool            `json:"ok"`
	Error   string          `json:"error,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// RegisterReq announces a host node to the registry.
type RegisterReq struct {
	MachineID string `json:"machine_id"`
	Addr      string `json:"addr"`
	// TTLSeconds makes the registration expire unless refreshed within
	// the TTL (0 = never expires). Gateways heartbeat by re-registering.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
	// Forwarded marks a registration already routed once by a federation
	// peer: the receiver must store it rather than re-forward (plain
	// registries ignore it).
	Forwarded bool `json:"forwarded,omitempty"`
}

// DiscoverReq is the optional discover payload. Plain registries ignore
// it; federation peers use Local to scope the answer to their own shard
// (the peer-to-peer fan-out) instead of the merged federation-wide view
// served to clients.
type DiscoverReq struct {
	Local bool `json:"local,omitempty"`
}

// Resource is one published host node.
type Resource struct {
	MachineID string `json:"machine_id"`
	Addr      string `json:"addr"`
}

// DiscoverResp lists the published resources.
type DiscoverResp struct {
	Resources []Resource `json:"resources"`
}

// QueryTRReq asks a gateway for the temporal reliability of running a guest
// job of the given length starting now.
type QueryTRReq struct {
	// LengthSeconds is the estimated job execution time (T).
	LengthSeconds float64 `json:"length_seconds"`
	// GuestMemMB is the job's estimated working set, used as the S4
	// threshold.
	GuestMemMB float64 `json:"guest_mem_mb"`
}

// QueryTRResp returns the prediction.
type QueryTRResp struct {
	TR float64 `json:"tr"`
	// HistoryWindows reports how much history backed the estimate.
	HistoryWindows int `json:"history_windows"`
	// CurrentState is the machine's current availability state (S1/S2
	// string form).
	CurrentState string `json:"current_state"`
	// CacheHits and CacheMisses are the node's cumulative prediction-engine
	// cache counters after this query, so clients can observe how much of
	// the query load is served from memoized kernels.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// SubmitReq launches a guest job.
type SubmitReq struct {
	Name string `json:"name"`
	// WorkSeconds is the pure compute time the job needs.
	WorkSeconds float64 `json:"work_seconds"`
	MemMB       float64 `json:"mem_mb"`
	// InitialProgressSeconds resumes from a checkpoint.
	InitialProgressSeconds float64 `json:"initial_progress_seconds,omitempty"`
	// IdempotencyKey, when set, makes the submit replay-safe: a gateway
	// that already launched a job for this key returns the original job
	// ID instead of launching a second guest. This is what lets a client
	// retry a submit whose ACK was lost in the network.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// SubmitResp acknowledges a launch.
type SubmitResp struct {
	JobID string `json:"job_id"`
}

// JobStatusReq queries a job.
type JobStatusReq struct {
	JobID string `json:"job_id"`
}

// JobStatusResp reports job state.
type JobStatusResp struct {
	JobID           string  `json:"job_id"`
	State           string  `json:"state"` // running | reniced | suspended | completed | killed
	Reason          string  `json:"reason,omitempty"`
	ProgressSeconds float64 `json:"progress_seconds"`
	WorkSeconds     float64 `json:"work_seconds"`
}

// QueryStatsReq asks a gateway for its observability snapshot.
type QueryStatsReq struct {
	// Calibration includes the per-predictor calibration tables in the
	// accuracy summaries (they are verbose, so off by default).
	Calibration bool `json:"calibration,omitempty"`
}

// EngineCacheStats mirrors the prediction engine's cache counters on the
// wire.
type EngineCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// QueryStatsResp is a host node's observability snapshot: engine cache
// effectiveness, per-type RPC counts, monitor throughput, and the online
// accuracy scores per predictor — the paper's Section 5 comparison served
// live over the wire.
type QueryStatsResp struct {
	MachineID string           `json:"machine_id"`
	Engine    EngineCacheStats `json:"engine"`
	// Requests and Errors count gateway RPCs by request type (only types
	// seen at least once appear).
	Requests map[string]uint64 `json:"requests,omitempty"`
	Errors   map[string]uint64 `json:"errors,omitempty"`
	// MonitorSamples counts samples recorded by the state manager.
	MonitorSamples uint64 `json:"monitor_samples"`
	// PendingPredictions is the number of issued TR predictions still
	// awaiting their window outcome.
	PendingPredictions int `json:"pending_predictions"`
	// Accuracy holds one summary per (machine, predictor) resolved on
	// this node; machine "_all" aggregates.
	Accuracy []obs.AccuracyStats `json:"accuracy,omitempty"`
	// Ring is present when the answering node is a federation peer: its
	// view of the peer ring, shard placement, and replication counters.
	Ring *RingStats `json:"ring,omitempty"`
}

// QueryTracesReq asks a gateway for its flight recorder's recent traces.
type QueryTracesReq struct {
	// Limit bounds how many traces come back (0 = server default).
	Limit int `json:"limit,omitempty"`
	// TraceID, when set, selects every retained record of one trace
	// instead of the recent listing.
	TraceID string `json:"trace_id,omitempty"`
	// Events includes recent captured WARN/ERROR log events.
	Events bool `json:"events,omitempty"`
}

// QueryTracesResp returns flight-recorder contents.
type QueryTracesResp struct {
	MachineID string `json:"machine_id"`
	// TotalRecorded counts traces ever recorded, including displaced ones.
	TotalRecorded uint64               `json:"total_recorded"`
	Traces        []otrace.TraceRecord `json:"traces,omitempty"`
	Events        []otrace.LogEvent    `json:"events,omitempty"`
}

// Call performs one request/response round trip to addr: a single untraced
// attempt over the real network. Use a Caller to plug in a different
// transport, a retry policy, or trace propagation.
func Call(addr string, typ string, payload, out interface{}, timeout time.Duration) error {
	return callOnce(netDialer{}, otrace.Link{}, addr, typ, payload, out, timeout)
}

// ErrMessageTooLarge reports a wire message that exceeded the decoder's byte
// cap.
var ErrMessageTooLarge = errors.New("ishare: message too large")

// maxResponseBytes caps what a client will buffer for one response envelope.
// Responses can carry discovery lists and accuracy tables, so the cap is
// larger than the server-side request cap.
const maxResponseBytes = 8 << 20

// DecodeRequest reads one request envelope from r, enforcing the byte cap
// (maxBytes <= 0 uses the server's 1 MiB default). This is the exact decode
// path Server.serve runs against untrusted connections, and the entry point
// the protocol fuzz tests exercise.
func DecodeRequest(r io.Reader, maxBytes int64) (Request, error) {
	var req Request
	if err := decodeCapped(r, maxBytes, &req); err != nil {
		return Request{}, err
	}
	return req, nil
}

// DecodeResponse reads one response envelope from r under the same cap
// discipline (maxBytes <= 0 uses maxResponseBytes). Clients run it against
// whatever the far end sent back.
func DecodeResponse(r io.Reader, maxBytes int64) (Response, error) {
	if maxBytes <= 0 {
		maxBytes = maxResponseBytes
	}
	var resp Response
	if err := decodeCapped(r, maxBytes, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

func decodeCapped(r io.Reader, maxBytes int64, out interface{}) error {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	limited := &io.LimitedReader{R: r, N: maxBytes}
	if err := json.NewDecoder(bufio.NewReader(limited)).Decode(out); err != nil {
		if limited.N <= 0 {
			return ErrMessageTooLarge
		}
		return fmt.Errorf("ishare: malformed message: %w", err)
	}
	return nil
}

// exchange runs the request/response protocol over an established
// connection. Failures to send or receive are transport errors (the request
// may or may not have executed remotely); a decoded Response{OK: false} is a
// RemoteError (the request definitely executed and was rejected). A sampled
// link is encoded as the envelope's optional trace header; the zero link
// leaves the envelope exactly as the pre-tracing protocol sent it.
func exchange(conn net.Conn, link otrace.Link, typ string, payload, out interface{}) error {
	var raw json.RawMessage
	if payload != nil {
		var err error
		raw, err = json.Marshal(payload)
		if err != nil {
			return err
		}
	}
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Request{Type: typ, Payload: raw, Trace: headerFromLink(link)}); err != nil {
		return &transportError{fmt.Errorf("ishare: send: %w", err)}
	}
	resp, err := DecodeResponse(conn, maxResponseBytes)
	if err != nil {
		return &transportError{fmt.Errorf("ishare: receive: %w", err)}
	}
	if !resp.OK {
		return &RemoteError{Msg: resp.Error}
	}
	if out != nil && resp.Payload != nil {
		if err := json.Unmarshal(resp.Payload, out); err != nil {
			return &transportError{fmt.Errorf("ishare: decode payload: %w", err)}
		}
	}
	return nil
}

// Handler processes one decoded request and returns the response payload.
type Handler func(req Request) (payload interface{}, err error)

// ServerConfig bounds per-connection resource use. The zero value gives the
// defaults: a 30 s connection deadline and a 1 MiB request cap.
type ServerConfig struct {
	// ConnDeadline bounds how long a connection may take to deliver its
	// request and drain the response (default 30 s).
	ConnDeadline time.Duration
	// MaxRequestBytes caps the request size read from a connection, so a
	// malformed or hostile client cannot balloon server memory
	// (default 1 MiB).
	MaxRequestBytes int64
	// AcceptBackoffMax caps the exponential backoff applied when Accept
	// fails transiently (default 1 s).
	AcceptBackoffMax time.Duration
}

func (c ServerConfig) connDeadline() time.Duration {
	if c.ConnDeadline <= 0 {
		return 30 * time.Second
	}
	return c.ConnDeadline
}

func (c ServerConfig) maxRequestBytes() int64 {
	if c.MaxRequestBytes <= 0 {
		return 1 << 20
	}
	return c.MaxRequestBytes
}

func (c ServerConfig) acceptBackoffMax() time.Duration {
	if c.AcceptBackoffMax <= 0 {
		return time.Second
	}
	return c.AcceptBackoffMax
}

// Server is a minimal one-request-per-connection TCP server shared by the
// registry and the gateway.
type Server struct {
	ln        net.Listener
	handler   Handler
	cfg       ServerConfig
	done      chan struct{}
	closeOnce sync.Once
}

// NewServer starts listening on addr (use "127.0.0.1:0" for tests) and
// serving requests with the handler, under the default ServerConfig.
func NewServer(addr string, handler Handler) (*Server, error) {
	return NewServerConfig(addr, handler, ServerConfig{})
}

// NewServerConfig is NewServer with explicit per-connection bounds.
func NewServerConfig(addr string, handler Handler, cfg ServerConfig) (*Server, error) {
	if handler == nil {
		return nil, fmt.Errorf("ishare: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListener(ln, handler, cfg), nil
}

// ServeListener serves the protocol on an already-open listener — the hook
// for wrapping the accept path in a fault-injecting transport.
func ServeListener(ln net.Listener, handler Handler, cfg ServerConfig) *Server {
	s := &Server{ln: ln, handler: handler, cfg: cfg, done: make(chan struct{})}
	go s.acceptLoop()
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server. Safe to call more than once: chaos harnesses
// kill servers mid-run and shared cleanup paths close them again.
func (s *Server) Close() error {
	err := error(nil)
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.ln.Close()
	})
	return err
}

func (s *Server) acceptLoop() {
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept failure (EMFILE, ECONNABORTED, ...):
			// back off with a capped exponential delay instead of
			// hot-spinning the CPU against a persistent error.
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else {
				backoff *= 2
			}
			if max := s.cfg.acceptBackoffMax(); backoff > max {
				backoff = max
			}
			select {
			case <-s.done:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(s.cfg.connDeadline()))
	req, err := DecodeRequest(conn, s.cfg.maxRequestBytes())
	if err != nil {
		msg := "malformed request"
		if errors.Is(err, ErrMessageTooLarge) {
			msg = "request too large"
		}
		_ = json.NewEncoder(conn).Encode(Response{OK: false, Error: msg})
		return
	}
	payload, err := s.handler(req)
	resp := Response{OK: err == nil}
	if err != nil {
		resp.Error = err.Error()
	} else if payload != nil {
		raw, merr := json.Marshal(payload)
		if merr != nil {
			resp = Response{OK: false, Error: "marshal response"}
		} else {
			resp.Payload = raw
		}
	}
	_ = json.NewEncoder(conn).Encode(resp)
}
