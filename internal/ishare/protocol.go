// Package ishare implements the FGCS runtime of Section 5 (Figure 2): the
// iShare gateway that controls guest processes on a host node, the state
// manager that stores history logs and answers temporal-reliability queries,
// the resource-publication registry (standing in for the paper's P2P
// network), and the client-side job scheduler that selects machines by
// predicted availability and submits guest jobs.
//
// Daemons speak a length-prefixed binary protocol (frame.go) over pooled,
// long-lived, multiplexed TCP connections, with a line-delimited JSON compat
// mode negotiated by first-byte sniff for debugging and old tooling; all
// components can also be wired in-process for simulations and tests.
package ishare

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fgcs/internal/obs"
	"fgcs/internal/otrace"
)

// Message types.
const (
	MsgRegister    = "register"     // gateway -> registry
	MsgDiscover    = "discover"     // client -> registry
	MsgQueryTR     = "query-tr"     // client -> gateway
	MsgSubmit      = "submit"       // client -> gateway
	MsgJobStatus   = "job-status"   // client -> gateway
	MsgKillJob     = "kill-job"     // client -> gateway
	MsgQueryStats  = "query-stats"  // client -> gateway
	MsgQueryTraces = "query-traces" // client -> gateway
	MsgQueryObs    = "query-obs"    // client/peer -> gateway (obs plane)
)

// TraceHeader is the optional trace-context carried in a request envelope:
// the wire form of an otrace.Link. It is strictly additive — peers that
// predate it ignore the field, and its absence means "untraced request" —
// so old and new daemons interoperate in either direction.
type TraceHeader struct {
	// TraceID and SpanID are fixed-width hex (otrace ID string form).
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id,omitempty"`
	// Sampled tells the server whether to record its side of the trace.
	Sampled bool `json:"sampled,omitempty"`
}

// Link decodes the header into an otrace link. Malformed IDs degrade to the
// zero link (untraced) rather than failing the request.
func (h *TraceHeader) Link() otrace.Link {
	if h == nil {
		return otrace.Link{}
	}
	tid, err := otrace.ParseTraceID(h.TraceID)
	if err != nil {
		return otrace.Link{}
	}
	sid, _ := otrace.ParseSpanID(h.SpanID)
	return otrace.Link{TraceID: tid, SpanID: sid, Sampled: h.Sampled}
}

// headerFromLink encodes a span link as a wire header (nil for the zero
// link, which keeps untraced requests byte-identical to the old protocol).
func headerFromLink(link otrace.Link) *TraceHeader {
	if link.TraceID == 0 {
		return nil
	}
	return &TraceHeader{
		TraceID: link.TraceID.String(),
		SpanID:  link.SpanID.String(),
		Sampled: link.Sampled,
	}
}

// Request is the protocol envelope: one request per connection, one
// response back.
type Request struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Trace is the optional trace-context header (absent on untraced
	// requests and on requests from peers that predate tracing).
	Trace *TraceHeader `json:"trace,omitempty"`
}

// Response is the reply envelope.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code is a machine-readable error class (CodeOverloaded for requests
	// shed by admission control); empty for ordinary application errors.
	Code    string          `json:"code,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// RegisterReq announces a host node to the registry.
type RegisterReq struct {
	MachineID string `json:"machine_id"`
	Addr      string `json:"addr"`
	// TTLSeconds makes the registration expire unless refreshed within
	// the TTL (0 = never expires). Gateways heartbeat by re-registering.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
	// Forwarded marks a registration already routed once by a federation
	// peer: the receiver must store it rather than re-forward (plain
	// registries ignore it).
	Forwarded bool `json:"forwarded,omitempty"`
}

// DiscoverReq is the optional discover payload. Plain registries ignore
// it; federation peers use Local to scope the answer to their own shard
// (the peer-to-peer fan-out) instead of the merged federation-wide view
// served to clients.
type DiscoverReq struct {
	Local bool `json:"local,omitempty"`
}

// Resource is one published host node.
type Resource struct {
	MachineID string `json:"machine_id"`
	Addr      string `json:"addr"`
}

// DiscoverResp lists the published resources.
type DiscoverResp struct {
	Resources []Resource `json:"resources"`
}

// QueryTRReq asks a gateway for the temporal reliability of running a guest
// job of the given length starting now.
type QueryTRReq struct {
	// LengthSeconds is the estimated job execution time (T).
	LengthSeconds float64 `json:"length_seconds"`
	// GuestMemMB is the job's estimated working set, used as the S4
	// threshold.
	GuestMemMB float64 `json:"guest_mem_mb"`
}

// QueryTRResp returns the prediction.
type QueryTRResp struct {
	TR float64 `json:"tr"`
	// HistoryWindows reports how much history backed the estimate.
	HistoryWindows int `json:"history_windows"`
	// CurrentState is the machine's current availability state (S1/S2
	// string form).
	CurrentState string `json:"current_state"`
	// CacheHits and CacheMisses are the node's cumulative prediction-engine
	// cache counters after this query, so clients can observe how much of
	// the query load is served from memoized kernels.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Predictor names the plugin that produced TR. Empty means the default
	// (SMP, on nodes running without the ensemble router).
	Predictor string `json:"predictor,omitempty"`
}

// SubmitReq launches a guest job.
type SubmitReq struct {
	Name string `json:"name"`
	// WorkSeconds is the pure compute time the job needs.
	WorkSeconds float64 `json:"work_seconds"`
	MemMB       float64 `json:"mem_mb"`
	// InitialProgressSeconds resumes from a checkpoint.
	InitialProgressSeconds float64 `json:"initial_progress_seconds,omitempty"`
	// IdempotencyKey, when set, makes the submit replay-safe: a gateway
	// that already launched a job for this key returns the original job
	// ID instead of launching a second guest. This is what lets a client
	// retry a submit whose ACK was lost in the network.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// SubmitResp acknowledges a launch.
type SubmitResp struct {
	JobID string `json:"job_id"`
}

// JobStatusReq queries a job.
type JobStatusReq struct {
	JobID string `json:"job_id"`
}

// JobStatusResp reports job state.
type JobStatusResp struct {
	JobID           string  `json:"job_id"`
	State           string  `json:"state"` // running | reniced | suspended | completed | killed
	Reason          string  `json:"reason,omitempty"`
	ProgressSeconds float64 `json:"progress_seconds"`
	WorkSeconds     float64 `json:"work_seconds"`
}

// QueryStatsReq asks a gateway for its observability snapshot.
type QueryStatsReq struct {
	// Calibration includes the per-predictor calibration tables in the
	// accuracy summaries (they are verbose, so off by default).
	Calibration bool `json:"calibration,omitempty"`
}

// EngineCacheStats mirrors the prediction engine's cache counters on the
// wire.
type EngineCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// QueryStatsResp is a host node's observability snapshot: engine cache
// effectiveness, per-type RPC counts, monitor throughput, and the online
// accuracy scores per predictor — the paper's Section 5 comparison served
// live over the wire.
type QueryStatsResp struct {
	MachineID string           `json:"machine_id"`
	Engine    EngineCacheStats `json:"engine"`
	// Requests and Errors count gateway RPCs by request type (only types
	// seen at least once appear).
	Requests map[string]uint64 `json:"requests,omitempty"`
	Errors   map[string]uint64 `json:"errors,omitempty"`
	// MonitorSamples counts samples recorded by the state manager.
	MonitorSamples uint64 `json:"monitor_samples"`
	// PendingPredictions is the number of issued TR predictions still
	// awaiting their window outcome.
	PendingPredictions int `json:"pending_predictions"`
	// Accuracy holds one summary per (machine, predictor) resolved on
	// this node; machine "_all" aggregates.
	Accuracy []obs.AccuracyStats `json:"accuracy,omitempty"`
	// Ring is present when the answering node is a federation peer: its
	// view of the peer ring, shard placement, and replication counters.
	Ring *RingStats `json:"ring,omitempty"`
	// Wire is the node's serving-path snapshot: negotiated protocol
	// version, connection mix, and admission-control sheds.
	Wire *WireStats `json:"wire,omitempty"`
	// SLO reports the node's serving-path objectives (QPS floor, p99
	// ceiling, error-budget burn rates), present when SLO monitors are
	// configured.
	SLO []obs.SLOStatus `json:"slo,omitempty"`
	// Routing is the ensemble router's snapshot, present when the node
	// routes queries across the predictor ensemble.
	Routing *RoutingStats `json:"routing,omitempty"`
	// WinRates reports, per predictor, the fraction of tracked machines on
	// which that predictor holds the best rolling Brier score (present
	// alongside Routing).
	WinRates map[string]float64 `json:"win_rates,omitempty"`
}

// RoutingStats is the ensemble router's wire snapshot: the candidate set,
// how many queries each predictor served, how often routing switched, and
// how many machines carry routing state.
type RoutingStats struct {
	Predictors []string          `json:"predictors"`
	Served     map[string]uint64 `json:"served,omitempty"`
	Switches   uint64            `json:"switches"`
	Machines   int               `json:"machines"`
}

// WireStats is a server's wire-protocol and admission-control snapshot,
// served inside QueryStatsResp so `isharec stats -verbose` can show which
// protocol a node negotiates and how hard it is shedding.
type WireStats struct {
	// ProtoVersion is the binary protocol version this server speaks.
	ProtoVersion int `json:"proto_version"`
	// BinaryConns and JSONConns count connections accepted per negotiated
	// protocol.
	BinaryConns uint64 `json:"binary_conns"`
	JSONConns   uint64 `json:"json_conns"`
	// ShedAcceptQueue counts connections dropped because the accept queue
	// was full; ShedInflight counts requests shed by the global in-flight
	// cap; ShedPerConn counts requests shed by the per-connection
	// pipelining cap.
	ShedAcceptQueue uint64 `json:"shed_accept_queue"`
	ShedInflight    uint64 `json:"shed_inflight"`
	ShedPerConn     uint64 `json:"shed_per_conn"`
}

// QueryTracesReq asks a gateway for its flight recorder's recent traces.
type QueryTracesReq struct {
	// Limit bounds how many traces come back (0 = server default).
	Limit int `json:"limit,omitempty"`
	// TraceID, when set, selects every retained record of one trace
	// instead of the recent listing.
	TraceID string `json:"trace_id,omitempty"`
	// Events includes recent captured WARN/ERROR log events.
	Events bool `json:"events,omitempty"`
	// Previous serves the flight snapshot the node persisted on its last
	// shutdown (ishared -data-dir) instead of the live recorder — the black
	// box of the run that just ended.
	Previous bool `json:"previous,omitempty"`
}

// QueryTracesResp returns flight-recorder contents.
type QueryTracesResp struct {
	MachineID string `json:"machine_id"`
	// TotalRecorded counts traces ever recorded, including displaced ones.
	TotalRecorded uint64               `json:"total_recorded"`
	Traces        []otrace.TraceRecord `json:"traces,omitempty"`
	Events        []otrace.LogEvent    `json:"events,omitempty"`
}

// Call performs one request/response round trip to addr: a single untraced
// attempt over the real network. Use a Caller to plug in a different
// transport, a retry policy, or trace propagation.
func Call(addr string, typ string, payload, out interface{}, timeout time.Duration) error {
	return callOnce(netDialer{}, otrace.Link{}, addr, typ, payload, out, timeout)
}

// ErrMessageTooLarge reports a wire message that exceeded the decoder's byte
// cap.
var ErrMessageTooLarge = errors.New("ishare: message too large")

// maxResponseBytes caps what a client will buffer for one response envelope.
// Responses can carry discovery lists and accuracy tables, so the cap is
// larger than the server-side request cap.
const maxResponseBytes = 8 << 20

// DecodeRequest reads one request envelope from r, enforcing the byte cap
// (maxBytes <= 0 uses the server's 1 MiB default). This is the exact decode
// path Server.serve runs against untrusted connections, and the entry point
// the protocol fuzz tests exercise.
func DecodeRequest(r io.Reader, maxBytes int64) (Request, error) {
	var req Request
	if err := decodeCapped(r, maxBytes, &req); err != nil {
		return Request{}, err
	}
	return req, nil
}

// DecodeResponse reads one response envelope from r under the same cap
// discipline (maxBytes <= 0 uses maxResponseBytes). Clients run it against
// whatever the far end sent back.
func DecodeResponse(r io.Reader, maxBytes int64) (Response, error) {
	if maxBytes <= 0 {
		maxBytes = maxResponseBytes
	}
	var resp Response
	if err := decodeCapped(r, maxBytes, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

func decodeCapped(r io.Reader, maxBytes int64, out interface{}) error {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	limited := &io.LimitedReader{R: r, N: maxBytes}
	if err := json.NewDecoder(bufio.NewReader(limited)).Decode(out); err != nil {
		if limited.N <= 0 {
			return ErrMessageTooLarge
		}
		return fmt.Errorf("ishare: malformed message: %w", err)
	}
	return nil
}

// exchange runs the request/response protocol over an established
// connection. Failures to send or receive are transport errors (the request
// may or may not have executed remotely); a decoded Response{OK: false} is a
// RemoteError (the request definitely executed and was rejected). A sampled
// link is encoded as the envelope's optional trace header; the zero link
// leaves the envelope exactly as the pre-tracing protocol sent it.
func exchange(conn net.Conn, link otrace.Link, typ string, payload, out interface{}) error {
	var raw json.RawMessage
	if payload != nil {
		var err error
		raw, err = json.Marshal(payload)
		if err != nil {
			return err
		}
	}
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Request{Type: typ, Payload: raw, Trace: headerFromLink(link)}); err != nil {
		return &transportError{fmt.Errorf("ishare: send: %w", err)}
	}
	resp, err := DecodeResponse(conn, maxResponseBytes)
	if err != nil {
		return &transportError{fmt.Errorf("ishare: receive: %w", err)}
	}
	if !resp.OK {
		return &RemoteError{Msg: resp.Error, Code: resp.Code}
	}
	if out != nil && resp.Payload != nil {
		if err := json.Unmarshal(resp.Payload, out); err != nil {
			return &transportError{fmt.Errorf("ishare: decode payload: %w", err)}
		}
	}
	return nil
}

// Handler processes one decoded request and returns the response payload.
type Handler func(req Request) (payload interface{}, err error)

// ServerConfig bounds per-connection resource use and tunes admission
// control. The zero value gives the defaults documented per field.
type ServerConfig struct {
	// ConnDeadline bounds the protocol sniff and, in JSON compat mode, how
	// long one message may take to arrive and drain (default 30 s). JSON
	// clients are short-lived, so a tight deadline is right for them.
	ConnDeadline time.Duration
	// IdleDeadline bounds the gap between frames on a long-lived binary
	// connection (default 5 min). It is re-armed before every frame read,
	// so an idle-but-healthy multiplexed connection is not killed by the
	// absolute deadline the short-lived JSON design used.
	IdleDeadline time.Duration
	// MaxRequestBytes caps the request size read from a connection, so a
	// malformed or hostile client cannot balloon server memory
	// (default 1 MiB).
	MaxRequestBytes int64
	// AcceptBackoffMax caps the exponential backoff applied when Accept
	// fails transiently (default 1 s).
	AcceptBackoffMax time.Duration
	// MaxConns bounds concurrently served connections (default 1024).
	MaxConns int
	// AcceptQueue bounds connections accepted but not yet dispatched
	// (default 128); beyond it new connections are dropped at accept.
	AcceptQueue int
	// MaxInflight bounds requests executing in handlers across all
	// connections (default 256).
	MaxInflight int
	// PerConnInflight bounds pipelined requests in flight on one binary
	// connection (default 32); excess frames are answered overloaded
	// without queueing.
	PerConnInflight int
	// MaxQueuedWaiters bounds requests queued for an in-flight slot across
	// all connections (default MaxInflight); beyond it requests are shed
	// with the typed overloaded error.
	MaxQueuedWaiters int
	// Metrics, when non-nil, counts connections per protocol and sheds per
	// reason.
	Metrics *ServerMetrics
}

func (c ServerConfig) connDeadline() time.Duration {
	if c.ConnDeadline <= 0 {
		return 30 * time.Second
	}
	return c.ConnDeadline
}

func (c ServerConfig) idleDeadline() time.Duration {
	if c.IdleDeadline <= 0 {
		return 5 * time.Minute
	}
	return c.IdleDeadline
}

func (c ServerConfig) maxRequestBytes() int64 {
	if c.MaxRequestBytes <= 0 {
		return 1 << 20
	}
	return c.MaxRequestBytes
}

func (c ServerConfig) acceptBackoffMax() time.Duration {
	if c.AcceptBackoffMax <= 0 {
		return time.Second
	}
	return c.AcceptBackoffMax
}

func (c ServerConfig) maxConns() int {
	if c.MaxConns <= 0 {
		return 1024
	}
	return c.MaxConns
}

func (c ServerConfig) acceptQueue() int {
	if c.AcceptQueue <= 0 {
		return 128
	}
	return c.AcceptQueue
}

func (c ServerConfig) maxInflight() int {
	if c.MaxInflight <= 0 {
		return 256
	}
	return c.MaxInflight
}

func (c ServerConfig) perConnInflight() int {
	if c.PerConnInflight <= 0 {
		return 32
	}
	return c.PerConnInflight
}

func (c ServerConfig) maxQueuedWaiters() int {
	if c.MaxQueuedWaiters <= 0 {
		return c.maxInflight()
	}
	return c.MaxQueuedWaiters
}

// Server is the shared TCP server of the registry and the gateway. Each
// accepted connection is sniffed by its first byte: the binary frame magic
// selects the multiplexed pipelined loop, anything else the line-delimited
// JSON compat loop. Admission control (bounded accept queue, global
// in-flight cap with per-connection fair dequeue, per-connection pipelining
// cap) sheds excess load with the typed overloaded error instead of
// queueing without bound.
type Server struct {
	ln        net.Listener
	handler   Handler
	cfg       ServerConfig
	admit     *admitter
	queue     chan net.Conn
	sem       chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewServer starts listening on addr (use "127.0.0.1:0" for tests) and
// serving requests with the handler, under the default ServerConfig.
func NewServer(addr string, handler Handler) (*Server, error) {
	return NewServerConfig(addr, handler, ServerConfig{})
}

// NewServerConfig is NewServer with explicit per-connection bounds.
func NewServerConfig(addr string, handler Handler, cfg ServerConfig) (*Server, error) {
	if handler == nil {
		return nil, fmt.Errorf("ishare: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListener(ln, handler, cfg), nil
}

// ServeListener serves the protocol on an already-open listener — the hook
// for wrapping the accept path in a fault-injecting transport.
func ServeListener(ln net.Listener, handler Handler, cfg ServerConfig) *Server {
	s := &Server{
		ln:      ln,
		handler: handler,
		cfg:     cfg,
		admit:   newAdmitter(cfg.maxInflight(), cfg.maxQueuedWaiters()),
		queue:   make(chan net.Conn, cfg.acceptQueue()),
		sem:     make(chan struct{}, cfg.maxConns()),
		done:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	go s.acceptLoop()
	go s.dispatchLoop()
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and severs every open connection, so pooled
// clients observe the death instead of talking to a ghost. Safe to call
// more than once: chaos harnesses kill servers mid-run and shared cleanup
// paths close them again.
func (s *Server) Close() error {
	err := error(nil)
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.ln.Close()
		// Drain connections parked in the accept queue.
		for {
			select {
			case c := <-s.queue:
				c.Close()
				continue
			default:
			}
			break
		}
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	return err
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept failure (EMFILE, ECONNABORTED, ...):
			// back off with a capped exponential delay instead of
			// hot-spinning the CPU against a persistent error.
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else {
				backoff *= 2
			}
			if max := s.cfg.acceptBackoffMax(); backoff > max {
				backoff = max
			}
			select {
			case <-s.done:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		select {
		case s.queue <- conn:
		default:
			// Accept queue full: shed at the door rather than buffering
			// connections without bound.
			s.cfg.Metrics.shedAcceptQueue()
			conn.Close()
		}
	}
}

// dispatchLoop moves accepted connections into service as MaxConns slots
// free up.
func (s *Server) dispatchLoop() {
	for {
		select {
		case <-s.done:
			return
		case conn := <-s.queue:
			select {
			case s.sem <- struct{}{}:
			case <-s.done:
				conn.Close()
				return
			}
			s.track(conn)
			go func(c net.Conn) {
				defer func() { <-s.sem }()
				s.serve(c)
			}(conn)
		}
	}
}

// serve sniffs the connection's protocol by its first byte and runs the
// matching loop until the connection closes.
func (s *Server) serve(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.connDeadline()))
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == frameMagic0 {
		s.cfg.Metrics.connOpened(true)
		s.serveBinary(conn, br)
		return
	}
	s.cfg.Metrics.connOpened(false)
	s.serveJSON(conn, br)
}

// serveJSON runs the line-delimited JSON compat loop: one envelope per
// line, responses in arrival order, connection kept alive between messages.
// The short ConnDeadline is re-armed per message — JSON clients are
// expected to be short-lived dial-per-RPC tools.
func (s *Server) serveJSON(conn net.Conn, br *bufio.Reader) {
	key := interface{}(conn)
	connDone := make(chan struct{})
	defer s.admit.forget(key)
	defer close(connDone)
	enc := json.NewEncoder(conn)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.connDeadline()))
		line, err := readLineCapped(br, s.cfg.maxRequestBytes())
		if err != nil {
			if errors.Is(err, ErrMessageTooLarge) {
				_ = enc.Encode(Response{OK: false, Error: "request too large"})
			}
			return
		}
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			_ = enc.Encode(Response{OK: false, Error: "malformed request"})
			return
		}
		if !s.admit.acquire(key, connDone) {
			s.cfg.Metrics.shedInflight()
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.connDeadline()))
			_ = enc.Encode(Response{OK: false, Error: "server overloaded", Code: CodeOverloaded})
			continue
		}
		resp := s.respond(req)
		s.admit.release()
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.connDeadline()))
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// serveBinary runs the multiplexed binary loop: frames are decoded
// sequentially, handled concurrently up to the pipelining cap, and
// responses are written whole (one frame per write) as handlers finish —
// possibly out of request order, which is what the request IDs are for.
func (s *Server) serveBinary(conn net.Conn, br *bufio.Reader) {
	key := interface{}(conn)
	connDone := make(chan struct{})
	var wg sync.WaitGroup
	var inflight int32
	defer s.admit.forget(key)
	defer wg.Wait()
	defer close(connDone)

	// Responses coalesce through the connection's batching flusher: handlers
	// finishing while a flush syscall is in flight ride the next batch. A
	// write failure closes the connection, which pops the decode loop below.
	bw := newBatchWriter(conn, s.cfg.connDeadline(), func(error) { _ = conn.Close() })
	defer bw.close()
	writeFrame := func(id uint64, ok, overloaded bool, errMsg string, payload []byte) error {
		buf := AppendResponseFrame(nil, id, ok, overloaded, errMsg, payload)
		return bw.enqueue(buf)
	}

	for {
		// Satellite of the multiplexed design: the read deadline re-arms
		// per frame, so a healthy idle connection survives while a stalled
		// one is still collected.
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.idleDeadline()))
		f, err := DecodeFrame(br, s.cfg.maxRequestBytes())
		if err != nil {
			return
		}
		if f.Kind != FrameRequest {
			return
		}
		if atomic.AddInt32(&inflight, 1) > int32(s.cfg.perConnInflight()) {
			atomic.AddInt32(&inflight, -1)
			s.cfg.Metrics.shedPerConn()
			if writeFrame(f.ID, false, true, "server overloaded", nil) != nil {
				return
			}
			continue
		}
		wg.Add(1)
		go func(f Frame) {
			defer wg.Done()
			defer atomic.AddInt32(&inflight, -1)
			if !s.admit.acquire(key, connDone) {
				s.cfg.Metrics.shedInflight()
				_ = writeFrame(f.ID, false, true, "server overloaded", nil)
				return
			}
			req := Request{Type: f.Type, Payload: f.Payload, Trace: headerFromLink(f.Trace)}
			resp := s.respond(req)
			s.admit.release()
			_ = writeFrame(f.ID, resp.OK, false, resp.Error, resp.Payload)
		}(f)
	}
}

// respond runs the handler for one decoded request and shapes the reply
// envelope, shared by both protocol loops.
func (s *Server) respond(req Request) Response {
	payload, err := s.handler(req)
	resp := Response{OK: err == nil}
	if err != nil {
		resp.Error = err.Error()
	} else if payload != nil {
		raw, merr := json.Marshal(payload)
		if merr != nil {
			resp = Response{OK: false, Error: "marshal response"}
		} else {
			resp.Payload = raw
		}
	}
	return resp
}

// readLineCapped reads one newline-terminated message, rejecting lines over
// the cap with ErrMessageTooLarge. EOF with buffered partial data returns
// the data (a client that writes a final unterminated message and closes
// still gets served). Blank lines come back empty for the caller to skip.
func readLineCapped(br *bufio.Reader, max int64) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		if int64(len(line)) > max {
			return nil, ErrMessageTooLarge
		}
		if err == nil {
			// Strip the terminator (and a CR, for telnet-style debugging).
			line = line[:len(line)-1]
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			return line, nil
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err == io.EOF && len(line) > 0 {
			return line, nil
		}
		return nil, err
	}
}
