package ishare

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fgcs/internal/obs"
)

type echoReq struct {
	N int `json:"n"`
}

// echoServer serves a doubling handler over the full server stack with the
// given config and returns the server plus its metrics. A non-nil block
// channel makes every handler invocation signal entry on entered (when set)
// and park until block closes.
func echoServer(t *testing.T, cfg ServerConfig, block <-chan struct{}, entered chan<- struct{}) (*Server, *ServerMetrics) {
	t.Helper()
	sm := NewServerMetrics(obs.NewRegistry())
	cfg.Metrics = sm
	srv, err := NewServerConfig("127.0.0.1:0", func(req Request) (interface{}, error) {
		if block != nil {
			if entered != nil {
				entered <- struct{}{}
			}
			<-block
		}
		var in echoReq
		if err := json.Unmarshal(req.Payload, &in); err != nil {
			return nil, err
		}
		return echoReq{N: in.N * 2}, nil
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, sm
}

// TestPoolReusesAndPipelines drives sequential and concurrent calls through
// one pooled connection: the server must see exactly one binary connection,
// the client must negotiate the binary protocol version, and every pipelined
// response must land on its own request.
func TestPoolReusesAndPipelines(t *testing.T) {
	srv, sm := echoServer(t, ServerConfig{}, nil, nil)
	pool := &Pool{}
	defer pool.Close()
	caller := &Caller{Pool: pool}

	for i := 1; i <= 20; i++ {
		var out echoReq
		if err := caller.Call(context.Background(), srv.Addr(), "echo", echoReq{N: i}, &out, time.Second); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if out.N != 2*i {
			t.Fatalf("call %d returned %d, want %d", i, out.N, 2*i)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 1; i <= 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out echoReq
			if err := caller.Call(context.Background(), srv.Addr(), "echo", echoReq{N: i}, &out, 2*time.Second); err != nil {
				errs <- fmt.Errorf("concurrent call %d: %w", i, err)
				return
			}
			if out.N != 2*i {
				errs <- fmt.Errorf("concurrent call %d returned %d", i, out.N)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := sm.Snapshot(); got.BinaryConns != 1 || got.JSONConns != 0 {
		t.Fatalf("server saw %d binary / %d json conns, want exactly 1 pooled binary conn", got.BinaryConns, got.JSONConns)
	}
	if v := pool.Negotiated(srv.Addr()); v != FrameVersion {
		t.Fatalf("negotiated version = %d, want %d", v, FrameVersion)
	}
}

// TestServerShedsTypedOverloaded saturates a one-slot server through one
// pooled connection: the in-flight holder plus one queued waiter fill the
// admission budget, the third concurrent request must come back as the typed
// overloaded error — immediately, not after a timeout — and the held
// requests must still complete once the slot frees.
func TestServerShedsTypedOverloaded(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv, sm := echoServer(t, ServerConfig{MaxInflight: 1, MaxQueuedWaiters: 1}, block, entered)
	pool := &Pool{}
	defer pool.Close()
	caller := &Caller{Pool: pool}

	call := func(i int, res chan<- error) {
		var out echoReq
		err := caller.Call(context.Background(), srv.Addr(), "echo", echoReq{N: i}, &out, 5*time.Second)
		if err == nil && out.N != 2*i {
			err = fmt.Errorf("call %d returned %d", i, out.N)
		}
		res <- err
	}
	held := make(chan error, 2)
	go call(1, held)
	<-entered // first request holds the slot inside the handler
	go call(2, held)
	// Wait until the second request is queued for the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.admit.mu.Lock()
		w := srv.admit.waiting
		srv.admit.mu.Unlock()
		if w == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	start := time.Now()
	var out echoReq
	err := caller.Call(context.Background(), srv.Addr(), "echo", echoReq{N: 3}, &out, 5*time.Second)
	if !IsOverloaded(err) {
		t.Fatalf("third request returned %v, want typed overloaded", err)
	}
	if IsTransport(err) {
		t.Fatal("overloaded error must not classify as a transport fault")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shed took %v; load shedding must be immediate", elapsed)
	}
	if got := sm.Snapshot(); got.ShedInflight != 1 {
		t.Fatalf("ShedInflight = %d, want 1 (snapshot %+v)", got.ShedInflight, got)
	}

	close(block)
	for i := 0; i < 2; i++ {
		if err := <-held; err != nil {
			t.Fatalf("held request failed after release: %v", err)
		}
	}
}

// TestServerShedsPerConnCap pins the per-connection pipelining cap: with one
// slot per connection, a second concurrent request on the same pooled
// connection is shed before it ever reaches the global admission queue.
func TestServerShedsPerConnCap(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv, sm := echoServer(t, ServerConfig{PerConnInflight: 1, MaxInflight: 8}, block, entered)
	pool := &Pool{}
	defer pool.Close()
	caller := &Caller{Pool: pool}

	held := make(chan error, 1)
	go func() {
		var out echoReq
		held <- caller.Call(context.Background(), srv.Addr(), "echo", echoReq{N: 1}, &out, 5*time.Second)
	}()
	// The per-connection slot is consumed before the handler parks.
	<-entered

	var out echoReq
	err := caller.Call(context.Background(), srv.Addr(), "echo", echoReq{N: 2}, &out, 5*time.Second)
	if !IsOverloaded(err) {
		t.Fatalf("second pipelined request returned %v, want typed overloaded", err)
	}
	if got := sm.Snapshot(); got.ShedPerConn != 1 {
		t.Fatalf("ShedPerConn = %d, want 1 (snapshot %+v)", got.ShedPerConn, got)
	}
	close(block)
	if err := <-held; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
}

// TestCallRetryBacksOffOnOverloaded pins the retry semantics of the typed
// overloaded error on the JSON compat path: sheds are retryable, so a caller
// with retries configured rides out a transient overload.
func TestCallRetryBacksOffOnOverloaded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var attempts int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := br.ReadString('\n'); err != nil {
					return
				}
				var resp Response
				if atomic.AddInt64(&attempts, 1) <= 2 {
					resp = Response{Error: "server overloaded", Code: CodeOverloaded}
				} else {
					resp = Response{OK: true, Payload: json.RawMessage(`{"n":42}`)}
				}
				b, _ := json.Marshal(resp)
				conn.Write(append(b, '\n'))
			}(conn)
		}
	}()

	caller := &Caller{
		Retry:      RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		JitterSeed: 1,
	}
	var out echoReq
	if err := caller.CallRetry(context.Background(), ln.Addr().String(), "echo", nil, &out, time.Second); err != nil {
		t.Fatalf("CallRetry over transient overload: %v", err)
	}
	if out.N != 42 {
		t.Fatalf("out.N = %d, want 42", out.N)
	}
	if got := atomic.LoadInt64(&attempts); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two sheds, one success)", got)
	}
}

// TestBreakerCountsShedsSeparately pins that admission sheds do not trip
// breakers: a shed server is alive and telling us to back off, which is not
// the machine-fault signal breakers quarantine on.
func TestBreakerCountsShedsSeparately(t *testing.T) {
	bs := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour}, &stepClock{now: time.Unix(0, 0)})
	shed := &RemoteError{Msg: "server overloaded", Code: CodeOverloaded}
	for i := 0; i < 5; i++ {
		bs.Report("m1", shed)
	}
	if !bs.Allow("m1") {
		t.Fatal("sheds tripped the breaker; only transport faults may")
	}
	faults, sheds := bs.Counts("m1")
	if faults != 0 || sheds != 5 {
		t.Fatalf("counts = %d faults / %d sheds, want 0/5", faults, sheds)
	}
	bs.Report("m1", &transportError{err: fmt.Errorf("connection refused")})
	if bs.Allow("m1") {
		t.Fatal("transport fault at threshold 1 did not open the breaker")
	}
	faults, sheds = bs.Counts("m1")
	if faults != 1 || sheds != 5 {
		t.Fatalf("counts = %d faults / %d sheds, want 1/5", faults, sheds)
	}
}

// TestPoolNoLeakedGoroutines closes the pool and server after a workload
// with both completed and shed requests, then checks the goroutine count
// settles back to the baseline: no read loops, handlers or admission waiters
// may outlive their connections.
func TestPoolNoLeakedGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	block := make(chan struct{})
	srv, _ := echoServer(t, ServerConfig{MaxInflight: 2, MaxQueuedWaiters: 1}, block, nil)
	pool := &Pool{}
	caller := &Caller{Pool: pool}
	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out echoReq
			// Successes, sheds and timeouts are all fine; the invariant
			// under test is cleanup, not outcome.
			_ = caller.Call(context.Background(), srv.Addr(), "echo", echoReq{N: i}, &out, 200*time.Millisecond)
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(block)
	wg.Wait()
	pool.Close()
	srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+1 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), truncateStack(string(buf[:n])))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIdleDeadlineResetsPerFrame pins the keep-alive contract of long-lived
// connections: each frame pushes the idle deadline forward, so a connection
// trickling requests slower than the deadline-from-accept stays up, while a
// truly idle one is reaped — and the pool transparently redials after the
// reap.
func TestIdleDeadlineResetsPerFrame(t *testing.T) {
	srv, sm := echoServer(t, ServerConfig{IdleDeadline: 800 * time.Millisecond}, nil, nil)
	pool := &Pool{}
	defer pool.Close()
	caller := &Caller{
		Pool: pool,
		// The post-reap call races the client noticing the server-side
		// close; a retry absorbs either interleaving.
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	}

	call := func(i int) error {
		var out echoReq
		return caller.CallRetry(context.Background(), srv.Addr(), "echo", echoReq{N: i}, &out, time.Second)
	}
	// Four calls 400 ms apart: total span ~1.6 s, far beyond the deadline,
	// but each frame resets it, so the single pooled connection survives.
	for i := 1; i <= 4; i++ {
		if err := call(i); err != nil {
			t.Fatalf("keep-alive call %d: %v", i, err)
		}
		time.Sleep(400 * time.Millisecond)
	}
	if got := sm.Snapshot().BinaryConns; got != 1 {
		t.Fatalf("server saw %d connections during keep-alive, want 1", got)
	}

	// Go fully idle past the deadline: the server reaps the connection, and
	// the next call succeeds over a fresh dial.
	time.Sleep(2 * time.Second)
	if err := call(6); err != nil {
		t.Fatalf("call after idle reap: %v", err)
	}
	if got := sm.Snapshot().BinaryConns; got != 2 {
		t.Fatalf("server saw %d connections after idle reap, want 2 (reap + redial)", got)
	}
}

func truncateStack(s string) string {
	if len(s) > 8000 {
		return s[:8000] + "\n...[truncated]"
	}
	return s
}
