package ishare

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"fgcs/internal/otrace"
)

func decodeBytes(t *testing.T, data []byte, max int64) (Frame, error) {
	t.Helper()
	return DecodeFrame(bufio.NewReader(bytes.NewReader(data)), max)
}

func TestFrameRequestRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		id      uint64
		typ     string
		link    otrace.Link
		payload []byte
	}{
		{"bare", 1, MsgQueryTR, otrace.Link{}, nil},
		{"payload", 1 << 40, MsgSubmit, otrace.Link{}, []byte(`{"work_seconds":300}`)},
		{"traced", 7, MsgJobStatus, otrace.Link{TraceID: 0xdeadbeef, SpanID: 0x1234}, []byte(`{}`)},
		{"sampled", 8, MsgQueryStats, otrace.Link{TraceID: 1, SpanID: 2, Sampled: true}, nil},
		// Crosses the 64 KiB chunk boundary of the alloc-capped reader.
		{"large", 9, MsgFedQueryTR, otrace.Link{}, bytes.Repeat([]byte("x"), 70<<10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := AppendRequestFrame(nil, tc.id, tc.typ, tc.link, tc.payload)
			f, err := decodeBytes(t, buf, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			if f.Kind != FrameRequest || f.Version != FrameVersion {
				t.Fatalf("kind/version = %d/%d", f.Kind, f.Version)
			}
			if f.ID != tc.id || f.Type != tc.typ || f.Trace != tc.link {
				t.Fatalf("decoded %+v, want id=%d type=%s trace=%+v", f, tc.id, tc.typ, tc.link)
			}
			if !bytes.Equal(f.Payload, tc.payload) {
				t.Fatalf("payload %d bytes, want %d", len(f.Payload), len(tc.payload))
			}
		})
	}
}

func TestFrameResponseRoundTrip(t *testing.T) {
	cases := []struct {
		name           string
		ok, overloaded bool
		errMsg         string
		payload        []byte
	}{
		{"ok", true, false, "", []byte(`{"tr":0.91}`)},
		{"app-error", false, false, "unknown machine m9", nil},
		{"overloaded", false, true, "server overloaded", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := AppendResponseFrame(nil, 42, tc.ok, tc.overloaded, tc.errMsg, tc.payload)
			f, err := decodeBytes(t, buf, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			if f.Kind != FrameResponse || f.ID != 42 {
				t.Fatalf("kind/id = %d/%d", f.Kind, f.ID)
			}
			if f.OK != tc.ok || f.Overloaded != tc.overloaded || f.Err != tc.errMsg {
				t.Fatalf("decoded %+v, want ok=%v overloaded=%v err=%q", f, tc.ok, tc.overloaded, tc.errMsg)
			}
			if !bytes.Equal(f.Payload, tc.payload) {
				t.Fatalf("payload %q, want %q", f.Payload, tc.payload)
			}
		})
	}
}

// TestFramePipelinedStream decodes several frames back to back off one
// reader, as the connection read loops do.
func TestFramePipelinedStream(t *testing.T) {
	var buf []byte
	for id := uint64(1); id <= 5; id++ {
		buf = AppendRequestFrame(buf, id, MsgQueryTR, otrace.Link{}, []byte{'0' + byte(id)})
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	for id := uint64(1); id <= 5; id++ {
		f, err := DecodeFrame(br, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", id, err)
		}
		if f.ID != id || f.Payload[0] != '0'+byte(id) {
			t.Fatalf("frame %d decoded as %+v", id, f)
		}
	}
	if _, err := DecodeFrame(br, 1<<20); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	valid := AppendRequestFrame(nil, 1, MsgQueryTR, otrace.Link{}, []byte(`{}`))

	badMagic := append([]byte{}, valid...)
	badMagic[0] = '{'
	if _, err := decodeBytes(t, badMagic, 0); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}

	badVersion := append([]byte{}, valid...)
	badVersion[2] = 99
	if _, err := decodeBytes(t, badVersion, 0); !errors.Is(err, ErrFrameVersion) {
		t.Fatalf("bad version: %v, want ErrFrameVersion", err)
	}

	badKind := append([]byte{}, valid...)
	badKind[3] = 7
	if _, err := decodeBytes(t, badKind, 0); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("bad kind: %v", err)
	}

	// A declared payload length over the cap is rejected from the prefix
	// alone — no allocation, no read.
	oversize := []byte{frameMagic0, frameMagic1, FrameVersion, FrameRequest, 0}
	oversize = binary.AppendUvarint(oversize, 1)
	oversize = binary.AppendUvarint(oversize, uint64(len(MsgQueryTR)))
	oversize = append(oversize, MsgQueryTR...)
	oversize = binary.AppendUvarint(oversize, 1<<30)
	if _, err := decodeBytes(t, oversize, 1<<20); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("oversize payload: %v, want ErrMessageTooLarge", err)
	}

	// An oversize type length is rejected even under a generous payload cap.
	badType := []byte{frameMagic0, frameMagic1, FrameVersion, FrameRequest, 0}
	badType = binary.AppendUvarint(badType, 1)
	badType = binary.AppendUvarint(badType, maxFrameTypeBytes+1)
	if _, err := decodeBytes(t, badType, 1<<20); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("oversize type: %v, want ErrMessageTooLarge", err)
	}

	// Truncation anywhere in the frame is an error, never a hang or panic.
	for cut := 1; cut < len(valid); cut++ {
		if _, err := decodeBytes(t, valid[:cut], 0); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

// TestDecodeFrameLyingLength declares an in-cap payload length on a stream
// that ends early: the chunked reader must fail on arrival, not trust the
// prefix.
func TestDecodeFrameLyingLength(t *testing.T) {
	lying := []byte{frameMagic0, frameMagic1, FrameVersion, FrameRequest, 0}
	lying = binary.AppendUvarint(lying, 1)
	lying = binary.AppendUvarint(lying, uint64(len(MsgQueryTR)))
	lying = append(lying, MsgQueryTR...)
	lying = binary.AppendUvarint(lying, 512<<10) // claims 512 KiB...
	lying = append(lying, "only this"...)        // ...delivers 9 bytes
	if _, err := decodeBytes(t, lying, 1<<20); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("lying length: %v, want unexpected EOF", err)
	}
}

// FuzzDecodeFrame hammers the decoder with arbitrary bytes. Two invariants:
// the decoder never panics (structural violations must all surface as
// errors), and any frame that decodes re-encodes canonically — encoding the
// decoded frame and decoding it again converges to a byte-stable form.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendRequestFrame(nil, 3, MsgQueryTR, otrace.Link{TraceID: 5, SpanID: 6, Sampled: true}, []byte(`{"length_seconds":3600}`)))
	f.Add(AppendResponseFrame(nil, 3, true, false, "", []byte(`{"tr":0.97}`)))
	f.Add(AppendResponseFrame(nil, 4, false, true, "server overloaded", nil))
	// Truncated mid-payload.
	f.Add(AppendRequestFrame(nil, 1, MsgSubmit, otrace.Link{}, []byte(`{"name":"j"}`))[:12])
	// Bad magic (a JSON client on the binary port).
	f.Add([]byte(`{"type":"query-tr"}` + "\n"))
	// Oversize declared length on a truncated stream.
	lying := []byte{frameMagic0, frameMagic1, FrameVersion, FrameRequest, 0, 1, byte(len(MsgQueryTR))}
	lying = append(lying, MsgQueryTR...)
	f.Add(binary.AppendUvarint(lying, 1<<40))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(bufio.NewReader(bytes.NewReader(data)), 1<<16)
		if err != nil {
			return
		}
		var buf []byte
		encode := func(fr Frame) []byte {
			if fr.Kind == FrameRequest {
				return AppendRequestFrame(nil, fr.ID, fr.Type, fr.Trace, fr.Payload)
			}
			return AppendResponseFrame(nil, fr.ID, fr.OK, fr.Overloaded, fr.Err, fr.Payload)
		}
		buf = encode(fr)
		fr2, err := DecodeFrame(bufio.NewReader(bytes.NewReader(buf)), 1<<16)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v\nframe: %+v", err, fr)
		}
		if buf2 := encode(fr2); !bytes.Equal(buf, buf2) {
			t.Fatalf("encoding not canonical:\nfirst:  %x\nsecond: %x", buf, buf2)
		}
	})
}
