package ishare

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/otrace"
	"fgcs/internal/predict"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
)

// JobState is the lifecycle state of a guest job under gateway control.
type JobState int

const (
	// JobRunning: default priority, host load below Th1 (state S1).
	JobRunning JobState = iota
	// JobReniced: lowest priority, host load between Th1 and Th2 (S2).
	JobReniced
	// JobSuspended: host load transiently above Th2; the guest is stopped
	// and will resume if the load drops within the suspend limit.
	JobSuspended
	// JobCompleted: the guest finished its work.
	JobCompleted
	// JobKilled: unrecoverable failure (S3, S4 or S5); the guest is gone.
	JobKilled
)

// String returns the protocol name of the state.
func (s JobState) String() string {
	switch s {
	case JobRunning:
		return "running"
	case JobReniced:
		return "reniced"
	case JobSuspended:
		return "suspended"
	case JobCompleted:
		return "completed"
	case JobKilled:
		return "killed"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Terminal reports whether no further transitions can happen.
func (s JobState) Terminal() bool { return s == JobCompleted || s == JobKilled }

// Job is a guest process under gateway control. The guest is a simulated
// CPU-bound computation: it accumulates progress whenever it is allowed to
// run, at a rate set by the cycles the host load leaves over.
type Job struct {
	ID     string
	Name   string
	Work   float64 // seconds of pure compute needed
	MemMB  float64
	State  JobState
	Reason string // why the job was killed

	Progress         float64 // accumulated compute seconds
	suspendedSamples int     // consecutive samples above Th2
}

// Gateway controls guest processes on one host node and serves client
// requests (Figure 2). It applies the paper's guest-control policy: renice
// at Th1, suspend above Th2, kill after the suspend limit, kill on memory
// pressure, and it loses everything on resource revocation.
type Gateway struct {
	mu        sync.Mutex
	machineID string
	cfg       avail.Config
	period    time.Duration
	clock     simclock.Clock
	sm        *StateManager
	job       *Job
	history   []Job // terminal jobs
	nextID    int
	submitted map[string]string // idempotency key -> job ID

	// submitSink, when set, is told about every newly accepted submit (not
	// idempotent replays) so the persistence layer can log it. It is invoked
	// after g.mu is released, which is safe against concurrent snapshots in
	// both directions: a snapshot captures its WAL position before calling
	// ExportSubmitted, so a record logged before that position belongs to a
	// submit the export already saw, and a record logged after it is
	// replayed on recovery as an idempotent upsert.
	submitSink func(key, jobID string)
}

// NewGateway wires a gateway to its state manager.
func NewGateway(machineID string, cfg avail.Config, period time.Duration, clock simclock.Clock, sm *StateManager) (*Gateway, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sm == nil {
		return nil, fmt.Errorf("ishare: nil state manager")
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Gateway{machineID: machineID, cfg: cfg, period: period, clock: clock, sm: sm}, nil
}

// MachineID returns the node identity.
func (g *Gateway) MachineID() string { return g.machineID }

// Record implements monitor.Sink: every sample both feeds the state manager
// and drives the guest-control state machine. This is the signal path
// "monitor detects a state transition and signals the gateway" of Section 5.1.
func (g *Gateway) Record(t time.Time, s trace.Sample) {
	g.sm.Record(t, s)
	g.mu.Lock()
	defer g.mu.Unlock()
	job := g.job
	if job == nil || job.State.Terminal() {
		return
	}
	switch {
	case !s.Up:
		g.kill(job, "machine unavailable (URR, S5)")
	case s.FreeMemMB < job.MemMB:
		g.kill(job, "memory thrashing (UEC, S4)")
	case s.CPU > g.cfg.Th2:
		job.suspendedSamples++
		if job.State != JobSuspended {
			job.State = JobSuspended
		}
		// Kill when the excursion reaches the classifier's S3 rule: a
		// run of SuspendUnits samples above Th2.
		if job.suspendedSamples >= g.cfg.SuspendUnits(g.period) {
			g.kill(job, "host CPU load steadily above Th2 (UEC, S3)")
		}
	case s.CPU >= g.cfg.Th1:
		job.State = JobReniced
		job.suspendedSamples = 0
	default:
		job.State = JobRunning
		job.suspendedSamples = 0
	}
	if job.State == JobRunning || job.State == JobReniced {
		// The guest consumes the cycles the host leaves over.
		rate := 1 - s.CPU/100
		if rate < 0 {
			rate = 0
		}
		job.Progress += rate * g.period.Seconds()
		if job.Progress >= job.Work {
			job.Progress = job.Work
			job.State = JobCompleted
			g.retire(job)
		}
	}
}

// Crash simulates resource revocation from the gateway's perspective: the
// node dies and any guest job dies with it.
func (g *Gateway) Crash() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.job != nil && !g.job.State.Terminal() {
		g.kill(g.job, "machine unavailable (URR, S5)")
	}
}

// kill retires the job with a reason. Callers hold g.mu.
func (g *Gateway) kill(job *Job, reason string) {
	job.State = JobKilled
	job.Reason = reason
	g.retire(job)
}

// retire moves a terminal job to history. Callers hold g.mu.
func (g *Gateway) retire(job *Job) {
	g.history = append(g.history, *job)
	g.job = nil
}

// QueryTR forwards a temporal-reliability query to the state manager. The
// state manager serves it through its prediction engine, so concurrent
// queries share fitted kernels; the response carries the node's cumulative
// cache hit/miss counters.
func (g *Gateway) QueryTR(ctx context.Context, req QueryTRReq) (QueryTRResp, error) {
	return g.sm.QueryTR(ctx, req)
}

// EngineStats reports the node's prediction-engine cache counters.
func (g *Gateway) EngineStats() predict.EngineStats { return g.sm.EngineStats() }

// QueryStats assembles the node's observability snapshot: engine cache
// counters, per-type RPC counts, monitor throughput, and the online accuracy
// summaries per predictor.
func (g *Gateway) QueryStats(ctx context.Context, req QueryStatsReq) (QueryStatsResp, error) {
	o := g.sm.Obs()
	st := g.sm.EngineStats()
	resp := QueryStatsResp{
		MachineID: g.machineID,
		Engine: EngineCacheStats{
			Hits:      st.Hits,
			Misses:    st.Misses,
			Evictions: st.Evictions,
			Entries:   st.Entries,
		},
		MonitorSamples:     o.Monitor.Samples.Value(),
		PendingPredictions: o.Tracker.Pending(),
		Accuracy:           o.Tracker.All(),
	}
	resp.Requests, resp.Errors = o.requestCounts()
	resp.Wire = o.wireStats()
	resp.SLO = o.SLOStatuses()
	if r := g.sm.Router(); r != nil {
		snap := r.Snapshot()
		resp.Routing = &snap
		resp.WinRates = o.Tracker.WinRates(r.Config().MinSamples)
	}
	if !req.Calibration {
		for i := range resp.Accuracy {
			resp.Accuracy[i].Calibration = nil
		}
	}
	return resp, nil
}

// QueryTraces serves the node's flight recorder: the recent-trace listing,
// or every retained record of one trace when the request names a trace ID.
// With tracing disabled (no recorder installed) it returns an empty snapshot
// rather than an error, so operator tooling degrades gracefully.
func (g *Gateway) QueryTraces(ctx context.Context, req QueryTracesReq) (QueryTracesResp, error) {
	if req.Previous {
		return prevFlightResp(g.machineID, g.sm.Obs().PrevFlight(), req)
	}
	rec := g.sm.Obs().Flight()
	resp := QueryTracesResp{MachineID: g.machineID, TotalRecorded: rec.Total()}
	if req.TraceID != "" {
		id, err := otrace.ParseTraceID(req.TraceID)
		if err != nil {
			return QueryTracesResp{}, fmt.Errorf("bad trace id %q", req.TraceID)
		}
		records, ok := rec.Trace(id)
		if !ok {
			return QueryTracesResp{}, fmt.Errorf("trace %s not retained", req.TraceID)
		}
		resp.Traces = records
	} else {
		resp.Traces = rec.Traces(req.Limit)
	}
	if req.Events {
		resp.Events = rec.Events(req.Limit)
	}
	return resp, nil
}

// Submit launches a guest job. FGCS allows a single guest process per
// machine (Section 3.2), so a second submission is rejected while one is
// active.
func (g *Gateway) Submit(ctx context.Context, req SubmitReq) (SubmitResp, error) {
	if req.WorkSeconds <= 0 {
		return SubmitResp{}, fmt.Errorf("ishare: job needs positive work")
	}
	if req.MemMB < 0 {
		return SubmitResp{}, fmt.Errorf("ishare: negative job memory")
	}
	if req.InitialProgressSeconds < 0 || req.InitialProgressSeconds >= req.WorkSeconds {
		return SubmitResp{}, fmt.Errorf("ishare: checkpoint progress out of range")
	}
	g.mu.Lock()
	// Idempotent replay: a client retrying a submit whose ACK was lost
	// gets the job it already launched, never a second guest.
	if req.IdempotencyKey != "" {
		if id, ok := g.submitted[req.IdempotencyKey]; ok {
			g.mu.Unlock()
			return SubmitResp{JobID: id}, nil
		}
	}
	if g.job != nil && !g.job.State.Terminal() {
		g.mu.Unlock()
		return SubmitResp{}, fmt.Errorf("ishare: machine %s already runs a guest job", g.machineID)
	}
	g.nextID++
	job := &Job{
		ID:       fmt.Sprintf("%s-job-%d", g.machineID, g.nextID),
		Name:     req.Name,
		Work:     req.WorkSeconds,
		MemMB:    req.MemMB,
		Progress: req.InitialProgressSeconds,
		State:    JobRunning,
	}
	g.job = job
	if req.IdempotencyKey != "" {
		if g.submitted == nil {
			g.submitted = make(map[string]string)
		}
		g.submitted[req.IdempotencyKey] = job.ID
	}
	sink := g.submitSink
	g.mu.Unlock()
	if sink != nil {
		// Logged even for keyless submits: the empty-key record still
		// advances the job-ID counter on replay, keeping IDs unique across
		// restarts.
		sink(req.IdempotencyKey, job.ID)
	}
	return SubmitResp{JobID: job.ID}, nil
}

// SetSubmitSink installs the persistence hook for accepted submits. Call
// before the gateway starts serving.
func (g *Gateway) SetSubmitSink(fn func(key, jobID string)) {
	g.mu.Lock()
	g.submitSink = fn
	g.mu.Unlock()
}

// ExportSubmitted deep-copies the idempotency table and the job-ID counter
// for a durable snapshot.
func (g *Gateway) ExportSubmitted() (map[string]string, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]string, len(g.submitted))
	for k, v := range g.submitted {
		out[k] = v
	}
	return out, g.nextID
}

// RestoreSubmitted installs a recovered idempotency table and job-ID
// counter. The counter only ever moves forward, so replaying WAL records on
// top of a snapshot that already contains them cannot reuse a job ID.
func (g *Gateway) RestoreSubmitted(submitted map[string]string, nextID int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for k, v := range submitted {
		if k == "" {
			continue
		}
		if g.submitted == nil {
			g.submitted = make(map[string]string)
		}
		g.submitted[k] = v
	}
	if nextID > g.nextID {
		g.nextID = nextID
	}
}

// RestoreSubmitKey replays one logged submit: the key maps back to its job
// ID (empty keys only advance the counter) and the counter is bumped past
// the ID's sequence number, parsed from its "<machine>-job-<n>" suffix.
func (g *Gateway) RestoreSubmitKey(key, jobID string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if key != "" {
		if g.submitted == nil {
			g.submitted = make(map[string]string)
		}
		g.submitted[key] = jobID
	}
	var n int
	if _, err := fmt.Sscanf(jobID, g.machineID+"-job-%d", &n); err == nil && n > g.nextID {
		g.nextID = n
	}
}

// JobStatus reports on a current or historical job.
func (g *Gateway) JobStatus(ctx context.Context, req JobStatusReq) (JobStatusResp, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.job != nil && g.job.ID == req.JobID {
		return statusOf(g.job), nil
	}
	for i := range g.history {
		if g.history[i].ID == req.JobID {
			return statusOf(&g.history[i]), nil
		}
	}
	return JobStatusResp{}, fmt.Errorf("ishare: unknown job %q", req.JobID)
}

// Kill terminates a job on client request (e.g. migration after a
// checkpoint).
func (g *Gateway) Kill(ctx context.Context, req JobStatusReq) (JobStatusResp, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.job == nil || g.job.ID != req.JobID {
		return JobStatusResp{}, fmt.Errorf("ishare: job %q not active", req.JobID)
	}
	job := g.job
	g.kill(job, "killed by client")
	return statusOf(job), nil
}

func statusOf(j *Job) JobStatusResp {
	return JobStatusResp{
		JobID:           j.ID,
		State:           j.State.String(),
		Reason:          j.Reason,
		ProgressSeconds: j.Progress,
		WorkSeconds:     j.Work,
	}
}

// Handler serves the gateway protocol over TCP. Every served request is
// timed and counted in the node's metrics registry, by request type; when the
// node has a tracer, each request runs under a server span continuing the
// trace named by the envelope's trace header (or a fresh trace on a sampled
// untraced request).
func (g *Gateway) Handler() Handler {
	o := g.sm.Obs()
	return func(req Request) (interface{}, error) {
		start := time.Now()
		ctx, span := o.TracerOrNil().StartRemote(context.Background(), req.Trace.Link(), "gateway.dispatch")
		if span != nil {
			span.SetAttr(otrace.String("machine", g.machineID), otrace.String("rpc", req.Type))
		}
		payload, err := g.dispatch(ctx, req)
		span.SetError(err)
		span.End()
		o.observeRPC(req.Type, err, time.Since(start))
		return payload, err
	}
}

func (g *Gateway) dispatch(ctx context.Context, req Request) (interface{}, error) {
	switch req.Type {
	case MsgQueryTR:
		var q QueryTRReq
		if err := json.Unmarshal(req.Payload, &q); err != nil {
			return nil, fmt.Errorf("malformed query payload")
		}
		return g.QueryTR(ctx, q)
	case MsgSubmit:
		var s SubmitReq
		if err := json.Unmarshal(req.Payload, &s); err != nil {
			return nil, fmt.Errorf("malformed submit payload")
		}
		return g.Submit(ctx, s)
	case MsgJobStatus:
		var s JobStatusReq
		if err := json.Unmarshal(req.Payload, &s); err != nil {
			return nil, fmt.Errorf("malformed status payload")
		}
		return g.JobStatus(ctx, s)
	case MsgKillJob:
		var s JobStatusReq
		if err := json.Unmarshal(req.Payload, &s); err != nil {
			return nil, fmt.Errorf("malformed kill payload")
		}
		return g.Kill(ctx, s)
	case MsgQueryStats:
		var s QueryStatsReq
		if req.Payload != nil {
			if err := json.Unmarshal(req.Payload, &s); err != nil {
				return nil, fmt.Errorf("malformed stats payload")
			}
		}
		return g.QueryStats(ctx, s)
	case MsgQueryTraces:
		var s QueryTracesReq
		if req.Payload != nil {
			if err := json.Unmarshal(req.Payload, &s); err != nil {
				return nil, fmt.Errorf("malformed traces payload")
			}
		}
		return g.QueryTraces(ctx, s)
	case MsgQueryObs:
		var s QueryObsReq
		if req.Payload != nil {
			if err := json.Unmarshal(req.Payload, &s); err != nil {
				return nil, fmt.Errorf("malformed obs payload")
			}
		}
		return g.QueryObs(ctx, s)
	default:
		return nil, fmt.Errorf("gateway: unknown request type %q", req.Type)
	}
}

// Serve starts the gateway's TCP endpoint under the default server config,
// with the node's serving-path metrics installed when observability is on.
func (g *Gateway) Serve(addr string) (*Server, error) {
	return g.ServeConfig(addr, ServerConfig{})
}

// ServeConfig is Serve with explicit admission-control and deadline bounds.
func (g *Gateway) ServeConfig(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = g.sm.Obs().serverMetrics()
	}
	return NewServerConfig(addr, g.Handler(), cfg)
}
