package ishare

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Registry is the resource publication/discovery service. The paper's
// deployment uses a P2P network [24]; a registry provides the same
// publish/discover contract for the prediction framework with a fraction of
// the machinery.
type Registry struct {
	mu        sync.Mutex
	resources map[string]Resource
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{resources: make(map[string]Resource)}
}

// Register publishes (or refreshes) a resource.
func (r *Registry) Register(res Resource) error {
	if res.MachineID == "" || res.Addr == "" {
		return fmt.Errorf("ishare: register needs machine id and address")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resources[res.MachineID] = res
	return nil
}

// Unregister removes a resource (owner leave).
func (r *Registry) Unregister(machineID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.resources, machineID)
}

// Resources lists the published resources sorted by machine ID.
func (r *Registry) Resources() []Resource {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Resource, 0, len(r.resources))
	for _, res := range r.resources {
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MachineID < out[j].MachineID })
	return out
}

// Handler serves the registry protocol.
func (r *Registry) Handler() Handler {
	return func(req Request) (interface{}, error) {
		switch req.Type {
		case MsgRegister:
			var reg RegisterReq
			if err := json.Unmarshal(req.Payload, &reg); err != nil {
				return nil, fmt.Errorf("malformed register payload")
			}
			return nil, r.Register(Resource{MachineID: reg.MachineID, Addr: reg.Addr})
		case MsgDiscover:
			return DiscoverResp{Resources: r.Resources()}, nil
		default:
			return nil, fmt.Errorf("registry: unknown request type %q", req.Type)
		}
	}
}

// Serve starts a TCP registry on addr.
func (r *Registry) Serve(addr string) (*Server, error) {
	return NewServer(addr, r.Handler())
}

// RegisterWith publishes a gateway at gatewayAddr to a remote registry.
func RegisterWith(registryAddr, machineID, gatewayAddr string, timeout time.Duration) error {
	return Call(registryAddr, MsgRegister, RegisterReq{MachineID: machineID, Addr: gatewayAddr}, nil, timeout)
}

// Discover fetches the published resources from a remote registry.
func Discover(registryAddr string, timeout time.Duration) ([]Resource, error) {
	var resp DiscoverResp
	if err := Call(registryAddr, MsgDiscover, nil, &resp, timeout); err != nil {
		return nil, err
	}
	return resp.Resources, nil
}
