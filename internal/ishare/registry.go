package ishare

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"fgcs/internal/simclock"
)

// Registry is the resource publication/discovery service. The paper's
// deployment uses a P2P network [24]; a registry provides the same
// publish/discover contract for the prediction framework with a fraction of
// the machinery.
//
// Registrations may carry a TTL: a gateway that stops heartbeating (host
// revoked, owner reboot, partition) expires and is no longer handed out by
// Discover, so clients never rank dead addresses. A TTL of zero preserves
// the original semantics: the registration never expires.
type Registry struct {
	mu        sync.Mutex
	clock     simclock.Clock
	resources map[string]registration

	// sink, when set, is told about every accepted registration change so
	// the persistence layer can log it. Invoked after r.mu is released: a
	// record logged before a concurrent snapshot's captured WAL position is
	// already in that snapshot's Export, and one logged after it is
	// replayed on recovery as an idempotent upsert.
	sink func(e RegEntry, removed bool)
}

// RegEntry is one registry entry in durable form, shared by the standalone
// Registry and the federated FedGateway shard: the machine, its gateway
// address, and the absolute expiry (zero = never). Absolute expiries make
// replay deterministic — a restart does not restart TTL clocks.
type RegEntry struct {
	Machine string
	Addr    string
	Expires time.Time
}

type registration struct {
	res     Resource
	expires time.Time // zero = never
}

// NewRegistry returns an empty registry on the wall clock.
func NewRegistry() *Registry {
	return NewRegistryClock(nil)
}

// NewRegistryClock returns an empty registry whose TTLs are judged against
// the given clock (nil = wall clock); simulations pass a virtual clock.
func NewRegistryClock(clock simclock.Clock) *Registry {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Registry{clock: clock, resources: make(map[string]registration)}
}

// Register publishes (or refreshes) a resource with no expiry.
func (r *Registry) Register(res Resource) error {
	return r.RegisterTTL(res, 0)
}

// RegisterTTL publishes (or refreshes) a resource that expires after ttl
// unless re-registered; ttl <= 0 means no expiry.
func (r *Registry) RegisterTTL(res Resource, ttl time.Duration) error {
	if res.MachineID == "" || res.Addr == "" {
		return fmt.Errorf("ishare: register needs machine id and address")
	}
	reg := registration{res: res}
	if ttl > 0 {
		reg.expires = r.clock.Now().Add(ttl)
	}
	r.mu.Lock()
	r.resources[res.MachineID] = reg
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink(RegEntry{Machine: res.MachineID, Addr: res.Addr, Expires: reg.expires}, false)
	}
	return nil
}

// Unregister removes a resource (owner leave).
func (r *Registry) Unregister(machineID string) {
	r.mu.Lock()
	delete(r.resources, machineID)
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink(RegEntry{Machine: machineID}, true)
	}
}

// SetSink installs the persistence hook for registration changes. Call
// before the registry starts serving. Expired entries reaped lazily are not
// reported — expiry is derivable from the persisted absolute deadline.
func (r *Registry) SetSink(fn func(e RegEntry, removed bool)) {
	r.mu.Lock()
	r.sink = fn
	r.mu.Unlock()
}

// Export snapshots every registration (including expired ones not yet
// reaped) in sorted order for durable storage.
func (r *Registry) Export() []RegEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RegEntry, 0, len(r.resources))
	for id, reg := range r.resources {
		out = append(out, RegEntry{Machine: id, Addr: reg.res.Addr, Expires: reg.expires})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// Restore upserts recovered entries without firing the sink. Entries whose
// absolute expiry has already passed are still installed — the normal lazy
// reap path removes them, keeping restore logic trivial and deterministic.
func (r *Registry) Restore(entries []RegEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range entries {
		if e.Machine == "" {
			continue
		}
		r.resources[e.Machine] = registration{
			res:     Resource{MachineID: e.Machine, Addr: e.Addr},
			expires: e.Expires,
		}
	}
}

// RestoreRemove replays a logged unregister without firing the sink.
func (r *Registry) RestoreRemove(machineID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.resources, machineID)
}

// Resources lists the live (non-expired) resources sorted by machine ID.
func (r *Registry) Resources() []Resource {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Resource, 0, len(r.resources))
	for _, reg := range r.resources {
		if !reg.expires.IsZero() && !now.Before(reg.expires) {
			continue
		}
		out = append(out, reg.res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MachineID < out[j].MachineID })
	return out
}

// Reap evicts expired registrations and returns how many were removed.
// Discover already filters expired entries lazily; the reaper keeps the map
// itself from accumulating dead gateways.
func (r *Registry) Reap() int {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for id, reg := range r.resources {
		if !reg.expires.IsZero() && !now.Before(reg.expires) {
			delete(r.resources, id)
			n++
		}
	}
	return n
}

// StartReaper evicts expired registrations every interval until the
// returned stop function is called.
func (r *Registry) StartReaper(every time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			select {
			case <-done:
				return
			case <-r.clock.After(every):
				r.Reap()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Handler serves the registry protocol.
func (r *Registry) Handler() Handler {
	return func(req Request) (interface{}, error) {
		switch req.Type {
		case MsgRegister:
			var reg RegisterReq
			if err := json.Unmarshal(req.Payload, &reg); err != nil {
				return nil, fmt.Errorf("malformed register payload")
			}
			ttl := time.Duration(reg.TTLSeconds * float64(time.Second))
			return nil, r.RegisterTTL(Resource{MachineID: reg.MachineID, Addr: reg.Addr}, ttl)
		case MsgDiscover:
			return DiscoverResp{Resources: r.Resources()}, nil
		default:
			return nil, fmt.Errorf("registry: unknown request type %q", req.Type)
		}
	}
}

// Serve starts a TCP registry on addr.
func (r *Registry) Serve(addr string) (*Server, error) {
	return NewServer(addr, r.Handler())
}

// RegisterWith publishes a gateway at gatewayAddr to a remote registry,
// with no expiry.
func RegisterWith(registryAddr, machineID, gatewayAddr string, timeout time.Duration) error {
	return RegisterWithTTL(context.Background(), nil, registryAddr, machineID, gatewayAddr, 0, timeout)
}

// RegisterWithTTL publishes a gateway with a TTL through an optional Caller
// (registration is idempotent, so the caller's retry policy applies). The
// gateway must re-register within the TTL — see HostNode.StartHeartbeat.
func RegisterWithTTL(ctx context.Context, caller *Caller, registryAddr, machineID, gatewayAddr string, ttl, timeout time.Duration) error {
	req := RegisterReq{MachineID: machineID, Addr: gatewayAddr, TTLSeconds: ttl.Seconds()}
	return caller.CallRetry(ctx, registryAddr, MsgRegister, req, nil, timeout)
}

// Discover fetches the published resources from a remote registry.
func Discover(registryAddr string, timeout time.Duration) ([]Resource, error) {
	return DiscoverWith(context.Background(), nil, registryAddr, timeout)
}

// DiscoverWith is Discover through an optional Caller with retries.
func DiscoverWith(ctx context.Context, caller *Caller, registryAddr string, timeout time.Duration) ([]Resource, error) {
	var resp DiscoverResp
	if err := caller.CallRetry(ctx, registryAddr, MsgDiscover, nil, &resp, timeout); err != nil {
		return nil, err
	}
	return resp.Resources, nil
}
