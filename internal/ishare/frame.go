// Binary wire protocol (version 1). The JSON envelope of protocol.go is the
// compat/debug transport; the hot path frames the same payloads in a
// length-prefixed binary codec so a pooled connection can carry many
// concurrent requests (pipelining) matched back to callers by request ID.
//
// Frame layout, all multi-byte lengths as unsigned varints, IDs big-endian:
//
//	+------+------+---------+------+-------+
//	| 0xF5 | 0x9C | version | kind | flags |   5 fixed header bytes
//	+------+------+---------+------+-------+
//	| request id (uvarint)                 |
//	+--------------------------------------+
//	request  (kind=1):
//	| type len (uvarint) | type bytes      |
//	| [trace: 8B trace id, 8B span id]     |   present iff flags&trace
//	| payload len (uvarint) | payload      |
//	response (kind=2):
//	| [error len (uvarint) | error bytes]  |   present iff !(flags&ok)
//	| payload len (uvarint) | payload      |
//
// The first magic byte doubles as the protocol sniff: a server peeks one
// byte and routes 0xF5 to the binary loop, anything else (in practice '{')
// to the line-delimited JSON loop — that is the whole negotiation handshake,
// so mixed fleets interoperate with zero extra round trips. Every frame
// carries the version byte; a server that cannot speak the version answers
// with one version-1 error frame and closes.
//
// Payload bytes remain JSON-encoded: the binary layer replaces the envelope
// (the per-request cost), not the payload schema, so the two transports stay
// bit-compatible at the application layer.
package ishare

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fgcs/internal/otrace"
)

// FrameVersion is the binary protocol version this build speaks. Version
// mismatches are rejected at decode time on both sides.
const FrameVersion = 1

// Frame kinds.
const (
	// FrameRequest marks a client->server frame.
	FrameRequest = 1
	// FrameResponse marks a server->client frame.
	FrameResponse = 2
)

const (
	frameMagic0 = 0xF5
	frameMagic1 = 0x9C

	// Request flags.
	frameFlagTrace   = 1 << 0 // a 16-byte trace header follows the type
	frameFlagSampled = 1 << 1 // the carried trace is sampled

	// Response flags.
	frameFlagOK         = 1 << 0 // the handler succeeded
	frameFlagOverloaded = 1 << 1 // the request was shed by admission control

	// maxFrameTypeBytes caps the request-type string; protocol verbs are
	// short ASCII names.
	maxFrameTypeBytes = 256
	// maxFrameErrBytes caps a response's error string.
	maxFrameErrBytes = 64 << 10
)

// Frame is one decoded binary-protocol message. Request frames populate
// Type/Trace, response frames populate OK/Overloaded/Err; both carry an ID
// and an optional payload of JSON bytes.
type Frame struct {
	// Kind is FrameRequest or FrameResponse.
	Kind byte
	// Version is the protocol version the frame was encoded with.
	Version byte
	// ID matches a response to its pipelined request on one connection.
	ID uint64
	// Type is the request verb (request frames only).
	Type string
	// Trace is the propagated trace context (request frames; zero when the
	// request is untraced).
	Trace otrace.Link
	// OK reports handler success (response frames only).
	OK bool
	// Overloaded marks a response shed by server admission control; the
	// client surfaces it as a RemoteError with CodeOverloaded.
	Overloaded bool
	// Err is the application error message when !OK.
	Err string
	// Payload is the JSON-encoded application payload (may be empty).
	Payload []byte
}

// AppendRequestFrame encodes one request frame onto buf and returns the
// extended slice. A zero link omits the trace header, keeping untraced
// requests as small as the pre-tracing protocol.
func AppendRequestFrame(buf []byte, id uint64, typ string, link otrace.Link, payload []byte) []byte {
	flags := byte(0)
	if link.TraceID != 0 {
		flags |= frameFlagTrace
		if link.Sampled {
			flags |= frameFlagSampled
		}
	}
	buf = append(buf, frameMagic0, frameMagic1, FrameVersion, FrameRequest, flags)
	buf = binary.AppendUvarint(buf, id)
	buf = binary.AppendUvarint(buf, uint64(len(typ)))
	buf = append(buf, typ...)
	if flags&frameFlagTrace != 0 {
		buf = binary.BigEndian.AppendUint64(buf, uint64(link.TraceID))
		buf = binary.BigEndian.AppendUint64(buf, uint64(link.SpanID))
	}
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return buf
}

// AppendResponseFrame encodes one response frame onto buf and returns the
// extended slice. The error string is encoded only on failure.
func AppendResponseFrame(buf []byte, id uint64, ok, overloaded bool, errMsg string, payload []byte) []byte {
	flags := byte(0)
	if ok {
		flags |= frameFlagOK
	}
	if overloaded {
		flags |= frameFlagOverloaded
	}
	buf = append(buf, frameMagic0, frameMagic1, FrameVersion, FrameResponse, flags)
	buf = binary.AppendUvarint(buf, id)
	if !ok {
		buf = binary.AppendUvarint(buf, uint64(len(errMsg)))
		buf = append(buf, errMsg...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return buf
}

// ErrFrameVersion reports a frame encoded with a binary-protocol version
// this build does not speak.
var ErrFrameVersion = fmt.Errorf("ishare: unsupported binary protocol version")

// DecodeFrame reads one binary frame from br, enforcing the payload byte cap
// (maxPayload <= 0 uses the server's 1 MiB default). Length prefixes are
// untrusted: allocation grows in bounded chunks as bytes actually arrive, so
// a hostile length cannot balloon memory, and every structural violation
// (bad magic, wrong version, oversize field, truncation) is an error rather
// than a panic. This is the entry point FuzzDecodeFrame exercises.
func DecodeFrame(br *bufio.Reader, maxPayload int64) (Frame, error) {
	if maxPayload <= 0 {
		maxPayload = 1 << 20
	}
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Frame{}, fmt.Errorf("ishare: frame header: %w", err)
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return Frame{}, fmt.Errorf("ishare: bad frame magic %#02x%02x", hdr[0], hdr[1])
	}
	if hdr[2] != FrameVersion {
		return Frame{}, fmt.Errorf("%w: got %d, speak %d", ErrFrameVersion, hdr[2], FrameVersion)
	}
	f := Frame{Version: hdr[2], Kind: hdr[3]}
	flags := hdr[4]
	if f.Kind != FrameRequest && f.Kind != FrameResponse {
		return Frame{}, fmt.Errorf("ishare: bad frame kind %d", f.Kind)
	}
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return Frame{}, fmt.Errorf("ishare: frame id: %w", err)
	}
	f.ID = id
	switch f.Kind {
	case FrameRequest:
		typ, err := readLenPrefixed(br, maxFrameTypeBytes, "type")
		if err != nil {
			return Frame{}, err
		}
		f.Type = string(typ)
		if flags&frameFlagTrace != 0 {
			var ids [16]byte
			if _, err := io.ReadFull(br, ids[:]); err != nil {
				return Frame{}, fmt.Errorf("ishare: frame trace header: %w", err)
			}
			f.Trace = otrace.Link{
				TraceID: otrace.TraceID(binary.BigEndian.Uint64(ids[:8])),
				SpanID:  otrace.SpanID(binary.BigEndian.Uint64(ids[8:])),
				Sampled: flags&frameFlagSampled != 0,
			}
		}
	case FrameResponse:
		f.OK = flags&frameFlagOK != 0
		f.Overloaded = flags&frameFlagOverloaded != 0
		if !f.OK {
			msg, err := readLenPrefixed(br, maxFrameErrBytes, "error")
			if err != nil {
				return Frame{}, err
			}
			f.Err = string(msg)
		}
	}
	payload, err := readLenPrefixed(br, maxPayload, "payload")
	if err != nil {
		return Frame{}, err
	}
	if len(payload) > 0 {
		f.Payload = payload
	}
	return f, nil
}

// readLenPrefixed reads a uvarint length and that many bytes, rejecting
// lengths above max with ErrMessageTooLarge. The buffer grows in 64 KiB
// chunks paced by actual arrival, so a lying length prefix on a truncated
// stream cannot allocate more than one chunk beyond the received bytes.
func readLenPrefixed(br *bufio.Reader, max int64, what string) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ishare: frame %s length: %w", what, err)
	}
	if int64(n) < 0 || int64(n) > max {
		return nil, fmt.Errorf("%w: frame %s of %d bytes (cap %d)", ErrMessageTooLarge, what, n, max)
	}
	if n == 0 {
		return nil, nil
	}
	const chunk = 64 << 10
	cap0 := int64(n)
	if cap0 > chunk {
		cap0 = chunk
	}
	buf := make([]byte, 0, cap0)
	for int64(len(buf)) < int64(n) {
		k := int64(n) - int64(len(buf))
		if k > chunk {
			k = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			return nil, fmt.Errorf("ishare: frame %s: %w", what, err)
		}
	}
	return buf, nil
}
