package ishare

import (
	"context"
	"strings"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/otrace"
)

// TestQueryTracesPrevious pins the -previous serving path: a gateway with a
// loaded flight snapshot answers Previous queries from the snapshot (not the
// live recorder), honors per-trace lookup, and a node with nothing loaded
// explains why rather than silently returning the current flight.
func TestQueryTracesPrevious(t *testing.T) {
	start := time.Date(2005, 9, 2, 8, 30, 0, 0, time.UTC)
	clock := &stepClock{now: start}
	sm, err := NewStateManager("m1", period, avail.DefaultConfig(), clock, historyMachine("m1", 11, -1), 0)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := NewGateway("m1", avail.DefaultConfig(), period, clock, sm)
	if err != nil {
		t.Fatal(err)
	}

	// First run: nothing was ever persisted.
	if _, err := gw.QueryTraces(context.Background(), QueryTracesReq{Previous: true}); err == nil {
		t.Fatal("Previous with no loaded snapshot: want error")
	} else if !strings.Contains(err.Error(), "no previous flight snapshot") {
		t.Fatalf("unhelpful error: %v", err)
	}

	// Simulate a restart: the previous process's recorder was snapshotted on
	// shutdown and loaded at boot.
	prev := otrace.NewRecorder(8)
	tr := otrace.New(otrace.Config{SampleRate: 1, Seed: 3, Recorder: prev})
	_, span := tr.Start(context.Background(), "old-run.op")
	span.End()
	snap := prev.Snapshot(start)
	sm.Obs().SetPrevFlight(snap)

	resp, err := gw.QueryTraces(context.Background(), QueryTracesReq{Previous: true, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.MachineID != "m1" || len(resp.Traces) != 1 || resp.Traces[0].Spans[0].Name != "old-run.op" {
		t.Fatalf("Previous served wrong content: %+v", resp)
	}
	// The live recorder is empty — Previous must not fall through to it, and
	// a live query must not see the old run.
	live, err := gw.QueryTraces(context.Background(), QueryTracesReq{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Traces) != 0 {
		t.Fatalf("live query leaked previous-run traces: %+v", live.Traces)
	}

	// Per-trace lookup against the snapshot, and a miss stays a miss.
	id := snap.Traces[0].TraceID.String()
	one, err := gw.QueryTraces(context.Background(), QueryTracesReq{Previous: true, TraceID: id})
	if err != nil || len(one.Traces) != 1 {
		t.Fatalf("Previous by id: resp=%+v err=%v", one, err)
	}
	if _, err := gw.QueryTraces(context.Background(), QueryTracesReq{Previous: true, TraceID: "00000000000000ff"}); err == nil {
		t.Fatal("unknown trace id in previous flight: want error")
	}
}
