package ishare

import (
	"fmt"
	"sort"
	"time"
)

// GatewayAPI is the client-visible surface of a host node. *Gateway
// implements it directly (in-process wiring); RemoteGateway implements it
// over TCP.
type GatewayAPI interface {
	QueryTR(QueryTRReq) (QueryTRResp, error)
	Submit(SubmitReq) (SubmitResp, error)
	JobStatus(JobStatusReq) (JobStatusResp, error)
	Kill(JobStatusReq) (JobStatusResp, error)
}

var _ GatewayAPI = (*Gateway)(nil)

// RemoteGateway speaks the gateway protocol over TCP.
type RemoteGateway struct {
	Addr    string
	Timeout time.Duration
}

func (r RemoteGateway) timeout() time.Duration {
	if r.Timeout <= 0 {
		return 5 * time.Second
	}
	return r.Timeout
}

// QueryTR implements GatewayAPI.
func (r RemoteGateway) QueryTR(req QueryTRReq) (QueryTRResp, error) {
	var resp QueryTRResp
	err := Call(r.Addr, MsgQueryTR, req, &resp, r.timeout())
	return resp, err
}

// Submit implements GatewayAPI.
func (r RemoteGateway) Submit(req SubmitReq) (SubmitResp, error) {
	var resp SubmitResp
	err := Call(r.Addr, MsgSubmit, req, &resp, r.timeout())
	return resp, err
}

// JobStatus implements GatewayAPI.
func (r RemoteGateway) JobStatus(req JobStatusReq) (JobStatusResp, error) {
	var resp JobStatusResp
	err := Call(r.Addr, MsgJobStatus, req, &resp, r.timeout())
	return resp, err
}

// Kill implements GatewayAPI.
func (r RemoteGateway) Kill(req JobStatusReq) (JobStatusResp, error) {
	var resp JobStatusResp
	err := Call(r.Addr, MsgKillJob, req, &resp, r.timeout())
	return resp, err
}

// Candidate pairs a machine identity with its gateway API.
type Candidate struct {
	MachineID string
	API       GatewayAPI
}

// Ranked is a candidate with its predicted temporal reliability.
type Ranked struct {
	Candidate
	TR             float64
	HistoryWindows int
	CurrentState   string
}

// Scheduler is the client-side job scheduler of Figure 2: it queries the
// gateways of available machines for their temporal reliability over the
// job's execution window and submits to the most reliable one.
type Scheduler struct {
	Candidates []Candidate
}

// FromRegistry builds a scheduler from the resources published at a
// registry address.
func FromRegistry(registryAddr string, timeout time.Duration) (*Scheduler, error) {
	resources, err := Discover(registryAddr, timeout)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{}
	for _, res := range resources {
		s.Candidates = append(s.Candidates, Candidate{
			MachineID: res.MachineID,
			API:       RemoteGateway{Addr: res.Addr, Timeout: timeout},
		})
	}
	return s, nil
}

// Rank queries every candidate's TR for the job and returns them sorted by
// decreasing reliability. Unreachable machines are skipped — an unreachable
// gateway is a revoked resource.
func (s *Scheduler) Rank(job SubmitReq) ([]Ranked, error) {
	if len(s.Candidates) == 0 {
		return nil, fmt.Errorf("ishare: no candidate machines")
	}
	var out []Ranked
	for _, c := range s.Candidates {
		resp, err := c.API.QueryTR(QueryTRReq{LengthSeconds: job.WorkSeconds, GuestMemMB: job.MemMB})
		if err != nil {
			continue
		}
		out = append(out, Ranked{Candidate: c, TR: resp.TR, HistoryWindows: resp.HistoryWindows, CurrentState: resp.CurrentState})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ishare: no machine answered the TR query")
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TR > out[j].TR })
	return out, nil
}

// SubmitBest ranks the candidates and submits the job to the machine with
// the highest predicted reliability, falling back down the ranking when a
// machine rejects the submission (e.g. it already runs a guest).
func (s *Scheduler) SubmitBest(job SubmitReq) (Ranked, SubmitResp, error) {
	ranked, err := s.Rank(job)
	if err != nil {
		return Ranked{}, SubmitResp{}, err
	}
	var lastErr error
	for _, r := range ranked {
		resp, err := r.API.Submit(job)
		if err == nil {
			return r, resp, nil
		}
		lastErr = err
	}
	return Ranked{}, SubmitResp{}, fmt.Errorf("ishare: every submission failed: %w", lastErr)
}
