package ishare

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fgcs/internal/otrace"
)

// GatewayAPI is the client-visible surface of a host node. *Gateway
// implements it directly (in-process wiring); RemoteGateway implements it
// over TCP. The context carries the request's trace span (if any) across
// the whole client → gateway → engine path.
type GatewayAPI interface {
	QueryTR(context.Context, QueryTRReq) (QueryTRResp, error)
	Submit(context.Context, SubmitReq) (SubmitResp, error)
	JobStatus(context.Context, JobStatusReq) (JobStatusResp, error)
	Kill(context.Context, JobStatusReq) (JobStatusResp, error)
}

var _ GatewayAPI = (*Gateway)(nil)

// RemoteGateway speaks the gateway protocol over TCP. With a nil Caller it
// behaves as a plain single-attempt client. With a Caller carrying a retry
// policy, the idempotent RPCs (QueryTR, JobStatus) are retried with backoff;
// Submit is retried only under an auto-generated idempotency key, so a lost
// ACK can never double-launch a guest; Kill always gets a single attempt.
type RemoteGateway struct {
	Addr    string
	Timeout time.Duration
	Caller  *Caller
}

func (r RemoteGateway) timeout() time.Duration {
	if r.Timeout <= 0 {
		return 5 * time.Second
	}
	return r.Timeout
}

// QueryTR implements GatewayAPI. Idempotent: retried under the caller's
// policy.
func (r RemoteGateway) QueryTR(ctx context.Context, req QueryTRReq) (QueryTRResp, error) {
	var resp QueryTRResp
	err := r.Caller.CallRetry(ctx, r.Addr, MsgQueryTR, req, &resp, r.timeout())
	return resp, err
}

// Submit implements GatewayAPI. Not idempotent by itself: without a key it
// gets exactly one attempt. When the caller has retries configured, a fresh
// idempotency key is attached (unless the request already carries one) and
// the submit becomes safely retryable — the gateway replays the original
// job ID for a duplicate key.
func (r RemoteGateway) Submit(ctx context.Context, req SubmitReq) (SubmitResp, error) {
	var resp SubmitResp
	if r.Caller != nil && r.Caller.Retry.MaxAttempts > 1 {
		if req.IdempotencyKey == "" {
			req.IdempotencyKey = r.Caller.NextKey(r.Addr)
		}
		err := r.Caller.CallRetry(ctx, r.Addr, MsgSubmit, req, &resp, r.timeout())
		return resp, err
	}
	err := r.Caller.Call(ctx, r.Addr, MsgSubmit, req, &resp, r.timeout())
	return resp, err
}

// JobStatus implements GatewayAPI. Idempotent: retried under the caller's
// policy.
func (r RemoteGateway) JobStatus(ctx context.Context, req JobStatusReq) (JobStatusResp, error) {
	var resp JobStatusResp
	err := r.Caller.CallRetry(ctx, r.Addr, MsgJobStatus, req, &resp, r.timeout())
	return resp, err
}

// Kill implements GatewayAPI. Killing twice is an application error, so a
// kill gets a single attempt; callers that lose the ACK can confirm the
// outcome with JobStatus.
func (r RemoteGateway) Kill(ctx context.Context, req JobStatusReq) (JobStatusResp, error) {
	var resp JobStatusResp
	err := r.Caller.Call(ctx, r.Addr, MsgKillJob, req, &resp, r.timeout())
	return resp, err
}

// QueryStats fetches the node's observability snapshot. Idempotent: retried
// under the caller's policy. (Deliberately not part of GatewayAPI — it is an
// operator surface, not a scheduling one.)
func (r RemoteGateway) QueryStats(ctx context.Context, req QueryStatsReq) (QueryStatsResp, error) {
	var resp QueryStatsResp
	err := r.Caller.CallRetry(ctx, r.Addr, MsgQueryStats, req, &resp, r.timeout())
	return resp, err
}

// QueryTraces fetches the node's flight-recorder snapshot. Idempotent:
// retried under the caller's policy. (An operator surface like QueryStats,
// so not part of GatewayAPI.)
func (r RemoteGateway) QueryTraces(ctx context.Context, req QueryTracesReq) (QueryTracesResp, error) {
	var resp QueryTracesResp
	err := r.Caller.CallRetry(ctx, r.Addr, MsgQueryTraces, req, &resp, r.timeout())
	return resp, err
}

// Candidate pairs a machine identity with its gateway API.
type Candidate struct {
	MachineID string
	API       GatewayAPI
}

// Ranked is a candidate with its predicted temporal reliability.
type Ranked struct {
	Candidate
	TR             float64
	HistoryWindows int
	CurrentState   string
}

// RankFailure explains why one machine is missing from a ranking, so
// callers and logs can tell a revoked resource from a network flake from a
// breaker quarantine.
type RankFailure struct {
	MachineID string
	Err       error
}

// Transient reports whether the failure was transport-level (network flake
// or quarantine) or an admission-control shed, rather than an application
// rejection by the machine.
func (f RankFailure) Transient() bool {
	return IsTransport(f.Err) || IsOverloaded(f.Err) || f.Err == ErrCircuitOpen
}

// String renders the failure as "machine: error" for logs and CLI output.
func (f RankFailure) String() string {
	return fmt.Sprintf("%s: %v", f.MachineID, f.Err)
}

// Scheduler is the client-side job scheduler of Figure 2: it queries the
// gateways of available machines for their temporal reliability over the
// job's execution window and submits to the most reliable one.
type Scheduler struct {
	Candidates []Candidate
	// Breakers, when set, quarantines machines whose gateways keep
	// failing: open-circuit machines are skipped in Rank without an RPC,
	// and every query outcome feeds the breaker state machine.
	Breakers *BreakerSet
}

// FromRegistry builds a scheduler from the resources published at a
// registry address, with plain single-attempt clients.
func FromRegistry(ctx context.Context, registryAddr string, timeout time.Duration) (*Scheduler, error) {
	return FromRegistryWith(ctx, nil, registryAddr, timeout)
}

// FromRegistryWith is FromRegistry with a shared Caller: discovery itself is
// retried under the caller's policy (Discover is idempotent), and every
// candidate gateway client inherits the caller's transport and retries.
func FromRegistryWith(ctx context.Context, caller *Caller, registryAddr string, timeout time.Duration) (*Scheduler, error) {
	var resp DiscoverResp
	if err := caller.CallRetry(ctx, registryAddr, MsgDiscover, nil, &resp, timeout); err != nil {
		return nil, err
	}
	s := &Scheduler{}
	for _, res := range resp.Resources {
		s.Candidates = append(s.Candidates, Candidate{
			MachineID: res.MachineID,
			API:       RemoteGateway{Addr: res.Addr, Timeout: timeout, Caller: caller},
		})
	}
	return s, nil
}

// Rank queries every candidate's TR for the job and returns them sorted by
// decreasing reliability, together with one RankFailure per machine that
// could not be ranked (breaker-open, unreachable, or query rejected). The
// error is non-nil only when no machine answered at all. Under a sampled
// trace, the ranking runs in a "scheduler.rank" span whose per-machine query
// spans carry the RPC attempts; machines skipped by an open breaker appear
// as "breaker-open" span events — no RPC, just the shedding decision.
func (s *Scheduler) Rank(ctx context.Context, job SubmitReq) ([]Ranked, []RankFailure, error) {
	if len(s.Candidates) == 0 {
		return nil, nil, fmt.Errorf("ishare: no candidate machines")
	}
	ctx, span := otrace.StartSpan(ctx, "scheduler.rank")
	defer span.End()
	var out []Ranked
	var failures []RankFailure
	for _, c := range s.Candidates {
		if s.Breakers != nil && !s.Breakers.Allow(c.MachineID) {
			span.AddEvent("breaker-open", otrace.String("machine", c.MachineID))
			failures = append(failures, RankFailure{MachineID: c.MachineID, Err: ErrCircuitOpen})
			continue
		}
		qctx, qspan := otrace.StartSpan(ctx, "scheduler.query-tr")
		if qspan != nil {
			qspan.SetAttr(otrace.String("machine", c.MachineID))
		}
		resp, err := c.API.QueryTR(qctx, QueryTRReq{LengthSeconds: job.WorkSeconds, GuestMemMB: job.MemMB})
		qspan.SetError(err)
		if err == nil && qspan != nil {
			qspan.SetAttr(otrace.Float("tr", resp.TR))
		}
		qspan.End()
		if s.Breakers != nil {
			s.Breakers.Report(c.MachineID, err)
		}
		if err != nil {
			failures = append(failures, RankFailure{MachineID: c.MachineID, Err: err})
			continue
		}
		out = append(out, Ranked{Candidate: c, TR: resp.TR, HistoryWindows: resp.HistoryWindows, CurrentState: resp.CurrentState})
	}
	if len(out) == 0 {
		err := fmt.Errorf("ishare: no machine answered the TR query (%d failed)", len(failures))
		span.SetError(err)
		return nil, failures, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TR > out[j].TR })
	return out, failures, nil
}

// SubmitBest ranks the candidates and submits the job to the machine with
// the highest predicted reliability, falling back down the ranking when a
// machine rejects the submission (e.g. it already runs a guest).
func (s *Scheduler) SubmitBest(ctx context.Context, job SubmitReq) (Ranked, SubmitResp, error) {
	ctx, span := otrace.StartSpan(ctx, "scheduler.submit-best")
	defer span.End()
	ranked, _, err := s.Rank(ctx, job)
	if err != nil {
		span.SetError(err)
		return Ranked{}, SubmitResp{}, err
	}
	var lastErr error
	for _, r := range ranked {
		sctx, sspan := otrace.StartSpan(ctx, "scheduler.submit")
		if sspan != nil {
			sspan.SetAttr(otrace.String("machine", r.MachineID))
		}
		resp, err := r.API.Submit(sctx, job)
		sspan.SetError(err)
		sspan.End()
		if err == nil {
			if span != nil {
				span.SetAttr(otrace.String("placed-on", r.MachineID))
			}
			return r, resp, nil
		}
		if s.Breakers != nil && IsTransport(err) {
			s.Breakers.Report(r.MachineID, err)
		}
		lastErr = err
	}
	err = fmt.Errorf("ishare: every submission failed: %w", lastErr)
	span.SetError(err)
	return Ranked{}, SubmitResp{}, err
}
