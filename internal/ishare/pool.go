package ishare

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"fgcs/internal/otrace"
)

// Pool holds long-lived multiplexed binary-protocol connections, one (or a
// few) per remote address, shared by every Caller routed through it. Each
// RPC is one request frame with a fresh request ID; responses are matched
// back by ID, so many calls pipeline concurrently on one connection instead
// of paying a dial + handshake each. A connection that fails is discarded
// and every call pending on it gets a transport error; the next call dials
// fresh.
type Pool struct {
	// Dialer defaults to the real network (tests inject faultnet here).
	Dialer Dialer
	// MaxPerHost bounds how many connections the pool keeps per address
	// (default 1 — pipelining makes one connection go a long way).
	MaxPerHost int
	// DialTimeout bounds connection establishment (default: the per-call
	// timeout).
	DialTimeout time.Duration

	mu     sync.Mutex
	conns  map[string][]*muxConn
	next   map[string]int // round-robin cursor per address
	closed bool
}

func (p *Pool) dialer() Dialer {
	if p.Dialer == nil {
		return netDialer{}
	}
	return p.Dialer
}

func (p *Pool) maxPerHost() int {
	if p.MaxPerHost <= 0 {
		return 1
	}
	return p.MaxPerHost
}

// batchWriter coalesces frame writes from many goroutines into few write
// syscalls: writers append whole frames to a pending buffer and a single
// flusher goroutine writes it out. While the flusher is inside one Write
// syscall, new frames accumulate and leave in the next batch, so batching
// scales with load — a lone frame still flushes immediately, a pipelined
// burst becomes one syscall.
type batchWriter struct {
	conn     net.Conn
	deadline time.Duration // write deadline per flush
	sig      chan struct{} // cap 1: pending data to flush
	done     chan struct{} // closed when the flusher exits
	stop     chan struct{}
	stopOnce sync.Once
	onError  func(error) // invoked once, from the flusher, on write failure

	mu  sync.Mutex
	buf []byte
	err error
}

// batchBacklogMax bounds the pending buffer: a peer that stops draining
// while this much queues is stuck, and the connection is poisoned rather
// than buffering without limit.
const batchBacklogMax = 8 << 20

func newBatchWriter(conn net.Conn, deadline time.Duration, onError func(error)) *batchWriter {
	w := &batchWriter{
		conn:     conn,
		deadline: deadline,
		sig:      make(chan struct{}, 1),
		done:     make(chan struct{}),
		stop:     make(chan struct{}),
		onError:  onError,
	}
	go w.loop()
	return w
}

// enqueue appends one encoded frame for the flusher. It fails fast once the
// writer has seen an error or the backlog cap is exceeded; actual write
// errors surface asynchronously through onError.
func (w *batchWriter) enqueue(frame []byte) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if len(w.buf)+len(frame) > batchBacklogMax {
		w.err = fmt.Errorf("ishare: write backlog over %d bytes", batchBacklogMax)
		err := w.err
		w.mu.Unlock()
		w.close()
		if w.onError != nil {
			w.onError(err)
		}
		return err
	}
	w.buf = append(w.buf, frame...)
	w.mu.Unlock()
	select {
	case w.sig <- struct{}{}:
	default:
	}
	return nil
}

func (w *batchWriter) loop() {
	defer close(w.done)
	var out []byte
	for {
		select {
		case <-w.sig:
		case <-w.stop:
			return
		}
		// Give runnable writers one scheduler round to append before the
		// buffer is grabbed: on a loaded machine this turns per-frame wakeups
		// into real batches, and on an idle one it returns immediately.
		runtime.Gosched()
		for {
			w.mu.Lock()
			if w.err != nil || len(w.buf) == 0 {
				w.mu.Unlock()
				break
			}
			out, w.buf = w.buf, out[:0]
			w.mu.Unlock()
			_ = w.conn.SetWriteDeadline(time.Now().Add(w.deadline))
			if _, err := w.conn.Write(out); err != nil {
				w.mu.Lock()
				if w.err == nil {
					w.err = err
				}
				w.mu.Unlock()
				if w.onError != nil {
					w.onError(err)
				}
				return
			}
		}
	}
}

// close stops the flusher; it does not close the connection.
func (w *batchWriter) close() {
	w.stopOnce.Do(func() { close(w.stop) })
}

// poolWriteDeadline bounds one coalesced write; per-call timeouts guard the
// round trip itself, this only collects connections with a wedged peer.
const poolWriteDeadline = 30 * time.Second

// muxConn is one multiplexed connection: frame writes coalesce through a
// batchWriter, a reader goroutine dispatches response frames to the pending
// call registered under their request ID.
type muxConn struct {
	conn net.Conn
	bw   *batchWriter

	mu      sync.Mutex
	pending map[uint64]chan Frame
	nextID  uint64
	dead    bool
	deadErr error
	version byte
}

// roundTrip sends one request frame and waits for its response frame, up to
// timeout. Transport failures poison the connection (all pending calls fail)
// so the pool retires it.
func (m *muxConn) roundTrip(typ string, link otrace.Link, payload []byte, timeout time.Duration) (Frame, error) {
	m.mu.Lock()
	if m.dead {
		err := m.deadErr
		m.mu.Unlock()
		return Frame{}, &transportError{fmt.Errorf("ishare: pooled conn dead: %w", err)}
	}
	m.nextID++
	id := m.nextID
	ch := make(chan Frame, 1)
	m.pending[id] = ch
	m.mu.Unlock()

	buf := AppendRequestFrame(nil, id, typ, link, payload)
	// The frame goes out through the connection's batching flusher; a write
	// failure there poisons the connection asynchronously and this call is
	// woken through its pending channel.
	if werr := m.bw.enqueue(buf); werr != nil {
		m.fail(fmt.Errorf("ishare: send: %w", werr))
		return Frame{}, &transportError{fmt.Errorf("ishare: send: %w", werr)}
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			m.mu.Lock()
			err := m.deadErr
			m.mu.Unlock()
			return Frame{}, &transportError{fmt.Errorf("ishare: receive: %w", err)}
		}
		return f, nil
	case <-timer.C:
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		// A response that arrives later is dropped by the reader.
		return Frame{}, &transportError{fmt.Errorf("ishare: receive: timeout after %v", timeout)}
	}
}

// readLoop dispatches response frames by request ID until the connection
// dies, then fails every pending call.
func (m *muxConn) readLoop() {
	br := bufio.NewReader(m.conn)
	for {
		f, err := DecodeFrame(br, maxResponseBytes)
		if err != nil {
			m.fail(err)
			return
		}
		m.mu.Lock()
		if m.version == 0 {
			m.version = f.Version
		}
		ch, ok := m.pending[f.ID]
		if ok {
			delete(m.pending, f.ID)
		}
		m.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// fail marks the connection dead, closes it, and wakes every pending call
// with the error.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	m.dead = true
	m.deadErr = err
	pending := m.pending
	m.pending = make(map[uint64]chan Frame)
	m.mu.Unlock()
	m.bw.close()
	_ = m.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// isDead reports whether the connection has been poisoned.
func (m *muxConn) isDead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}

// get returns a live connection to addr, dialing one if needed. Dead
// connections are pruned on the way.
func (p *Pool) get(addr string, timeout time.Duration) (*muxConn, error) {
	if p.DialTimeout > 0 {
		timeout = p.DialTimeout
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, &transportError{fmt.Errorf("ishare: pool closed")}
	}
	if p.conns == nil {
		p.conns = make(map[string][]*muxConn)
		p.next = make(map[string]int)
	}
	live := p.conns[addr][:0]
	for _, m := range p.conns[addr] {
		if !m.isDead() {
			live = append(live, m)
		}
	}
	p.conns[addr] = live
	if len(live) >= p.maxPerHost() {
		m := live[p.next[addr]%len(live)]
		p.next[addr]++
		p.mu.Unlock()
		return m, nil
	}
	p.mu.Unlock()

	conn, err := p.dialer().DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, &transportError{fmt.Errorf("ishare: dial %s: %w", addr, err)}
	}
	m := &muxConn{conn: conn, pending: make(map[uint64]chan Frame)}
	m.bw = newBatchWriter(conn, poolWriteDeadline, func(err error) {
		m.fail(fmt.Errorf("ishare: send: %w", err))
	})
	go m.readLoop()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		m.fail(fmt.Errorf("ishare: pool closed"))
		return nil, &transportError{fmt.Errorf("ishare: pool closed")}
	}
	p.conns[addr] = append(p.conns[addr], m)
	p.mu.Unlock()
	return m, nil
}

// call performs one binary-protocol RPC through the pool.
func (p *Pool) call(link otrace.Link, addr, typ string, payload, out interface{}, timeout time.Duration) error {
	var raw []byte
	if payload != nil {
		var err error
		raw, err = json.Marshal(payload)
		if err != nil {
			return err
		}
	}
	m, err := p.get(addr, timeout)
	if err != nil {
		return err
	}
	f, err := m.roundTrip(typ, link, raw, timeout)
	if err != nil {
		return err
	}
	if !f.OK {
		re := &RemoteError{Msg: f.Err}
		if f.Overloaded {
			re.Code = CodeOverloaded
		}
		return re
	}
	if out != nil && len(f.Payload) > 0 {
		if err := json.Unmarshal(f.Payload, out); err != nil {
			return &transportError{fmt.Errorf("ishare: decode payload: %w", err)}
		}
	}
	return nil
}

// Negotiated reports the binary protocol version observed on the pooled
// connection to addr (0 when no response has been seen yet or no connection
// exists).
func (p *Pool) Negotiated(addr string) byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.conns[addr] {
		m.mu.Lock()
		v := m.version
		m.mu.Unlock()
		if v != 0 {
			return v
		}
	}
	return 0
}

// Close tears down every pooled connection; in-flight calls fail with a
// transport error. The pool rejects use after Close.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, list := range conns {
		for _, m := range list {
			m.fail(fmt.Errorf("ishare: pool closed"))
		}
	}
}
