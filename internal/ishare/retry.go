package ishare

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fgcs/internal/obs"
	"fgcs/internal/otrace"
	"fgcs/internal/rng"
	"fgcs/internal/simclock"
)

// Dialer abstracts connection establishment so tests can route RPCs through
// a fault-injecting transport (internal/faultnet implements this).
type Dialer interface {
	DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error)
}

// netDialer is the production dialer.
type netDialer struct{}

func (netDialer) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout(network, addr, timeout)
}

// CodeOverloaded is the Response.Code a server attaches to requests it
// sheds under admission control. Unlike ordinary remote errors, an
// overloaded rejection is safe to retry (the handler never ran) and is
// counted by breakers separately from transport faults.
const CodeOverloaded = "overloaded"

// RemoteError is an application-level error returned by the far end. The
// RPC reached the server and was processed; retrying it would re-execute
// the operation, so the retry layer never retries these — with one
// exception: CodeOverloaded marks a request the server shed before running
// the handler, which the retry layer treats as retryable with backoff.
type RemoteError struct {
	Msg string
	// Code is the machine-readable error class from the wire (empty for
	// ordinary application errors).
	Code string
}

// Error formats the far end's message under an "ishare: remote error"
// prefix so transport and application failures read differently in logs.
func (e *RemoteError) Error() string { return fmt.Sprintf("ishare: remote error: %s", e.Msg) }

// IsOverloaded reports whether err is a typed overloaded rejection: the
// server shed the request under admission control without running the
// handler, so retrying with backoff is safe and appropriate.
func IsOverloaded(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == CodeOverloaded
}

// transportError marks a failure below the application: dial, send, receive
// or decode. The request may or may not have reached the server, so only
// idempotent RPCs are safe to retry after one.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// IsTransport reports whether err is a transport-level failure (as opposed
// to an application error returned by the remote handler). Callers use it to
// tell "machine unreachable / network flake" from "machine said no".
func IsTransport(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

// RetryPolicy shapes retries for idempotent RPCs: exponential backoff with
// deterministic seeded jitter, capped per-attempt by the call timeout.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (1 or less = no retry).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 50 ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 2 s).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

func (p RetryPolicy) multiplier() float64 {
	if p.Multiplier <= 1 {
		return 2
	}
	return p.Multiplier
}

// delay computes the backoff before attempt n (n >= 1 is the first retry),
// with jitter drawn from the given stream: the second half of each delay is
// randomized to decorrelate clients hammering a recovering node.
func (p RetryPolicy) delay(n int, jitter *rng.Stream) time.Duration {
	d := float64(p.baseDelay())
	for i := 1; i < n; i++ {
		d *= p.multiplier()
		if d >= float64(p.maxDelay()) {
			d = float64(p.maxDelay())
			break
		}
	}
	half := d / 2
	return time.Duration(half + jitter.Float64()*half)
}

// CallerMetrics instruments a Caller's attempts. The obs counters are
// nil-safe, so a partially populated struct records what it can; a nil
// *CallerMetrics records nothing.
type CallerMetrics struct {
	// Attempts counts every RPC attempt (first tries and retries).
	Attempts *obs.Counter
	// Retries counts attempts beyond a call's first — the PR 2 retry
	// traffic made visible.
	Retries *obs.Counter
	// TransportErrors counts attempts that failed below the application
	// (dial, send, receive, decode).
	TransportErrors *obs.Counter
	// Overloaded counts attempts the server shed under admission control.
	Overloaded *obs.Counter
}

func (m *CallerMetrics) observe(attempt int, err error) {
	if m == nil {
		return
	}
	m.Attempts.Inc()
	if attempt > 1 {
		m.Retries.Inc()
	}
	if IsTransport(err) {
		m.TransportErrors.Inc()
	}
	if IsOverloaded(err) {
		m.Overloaded.Inc()
	}
}

// Caller performs protocol round trips with a pluggable transport, a retry
// policy for idempotent RPCs, and an idempotency-key source for RPCs that
// must not double-execute. The zero value (and a nil *Caller) behaves
// exactly like the package-level Call: real dialer, single attempt.
type Caller struct {
	// Dialer defaults to the real network.
	Dialer Dialer
	// Pool, when non-nil, routes calls over pooled multiplexed binary
	// connections instead of dialing a fresh JSON connection per attempt.
	// The pool's own Dialer wins over the caller's.
	Pool *Pool
	// Retry applies to idempotent calls made through CallRetry.
	Retry RetryPolicy
	// Clock paces backoff sleeps (defaults to the wall clock). Use a
	// virtual clock only if something else advances it during calls.
	Clock simclock.Clock
	// JitterSeed seeds the backoff jitter stream, making retry schedules
	// reproducible (0 uses a fixed default seed).
	JitterSeed uint64
	// Metrics, when non-nil, counts attempts, retries and transport
	// failures.
	Metrics *CallerMetrics

	mu       sync.Mutex
	jitter   *rng.Stream
	instance string
	keySeq   uint64
}

func (c *Caller) dialer() Dialer {
	if c == nil || c.Dialer == nil {
		return netDialer{}
	}
	return c.Dialer
}

func (c *Caller) clock() simclock.Clock {
	if c == nil || c.Clock == nil {
		return simclock.Real{}
	}
	return c.Clock
}

func (c *Caller) nextJitter(n int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jitter == nil {
		seed := c.JitterSeed
		if seed == 0 {
			seed = 0x15A4E
		}
		c.jitter = rng.New(seed)
	}
	return c.Retry.delay(n, c.jitter)
}

// NextKey returns a fresh idempotency key: a per-caller instance tag plus a
// counter. The instance tag makes keys from different client processes
// distinct — gateways remember keys for as long as they run, so a bare
// counter would collide across client invocations and silently hand the
// second client the first one's job. With JitterSeed set (tests), the tag
// is derived from the seed and the whole key sequence is reproducible;
// otherwise it is drawn from crypto/rand once per caller. Both forms have
// the same length, so message sizes stay run-independent.
func (c *Caller) NextKey(prefix string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.instance == "" {
		if c.JitterSeed != 0 {
			c.instance = fmt.Sprintf("%08x", c.JitterSeed&0xFFFFFFFF)
		} else {
			var b [4]byte
			if _, err := crand.Read(b[:]); err != nil {
				// Last resort: clock entropy beats a guaranteed collision.
				binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
			}
			c.instance = hex.EncodeToString(b[:])
		}
	}
	c.keySeq++
	return fmt.Sprintf("%s/%s-k%d", prefix, c.instance, c.keySeq)
}

// Call performs a single-attempt round trip through the caller's dialer.
// Use it for non-idempotent RPCs (Submit without a key, Kill). If ctx carries
// a sampled span, the attempt is recorded as a child span and its link
// travels in the request's trace header; an untraced context adds nothing.
func (c *Caller) Call(ctx context.Context, addr, typ string, payload, out interface{}, timeout time.Duration) error {
	attempt := otrace.FromContext(ctx).StartChild("rpc.attempt")
	if attempt != nil {
		attempt.SetAttr(otrace.String("rpc", typ), otrace.Int("attempt", 1))
	}
	err := c.callOnce(attempt.Link(), addr, typ, payload, out, timeout)
	attempt.SetError(err)
	attempt.End()
	if c != nil {
		c.Metrics.observe(1, err)
	}
	return err
}

// callOnce routes one attempt through the caller's transport: the pooled
// multiplexed binary protocol when a Pool is installed, otherwise a fresh
// dial-per-RPC JSON exchange.
func (c *Caller) callOnce(link otrace.Link, addr, typ string, payload, out interface{}, timeout time.Duration) error {
	if c != nil && c.Pool != nil {
		return c.Pool.call(link, addr, typ, payload, out, timeout)
	}
	return callOnce(c.dialer(), link, addr, typ, payload, out, timeout)
}

// CallRetry performs the round trip with the caller's retry policy: each
// attempt gets the full timeout as its own deadline; transport errors and
// typed overloaded sheds are retried after jittered backoff (so a fleet of
// clients backs off a saturated server instead of hammering it), remote
// application errors are returned immediately.
// Only use it for idempotent RPCs, or RPCs protected by an idempotency key.
// Each attempt becomes its own child span of ctx's active span (siblings
// under the caller's operation), so a recorded trace shows exactly how many
// tries a call took and which of them failed.
func (c *Caller) CallRetry(ctx context.Context, addr, typ string, payload, out interface{}, timeout time.Duration) error {
	attempts := 1
	if c != nil && c.Retry.MaxAttempts > 1 {
		attempts = c.Retry.MaxAttempts
	}
	parent := otrace.FromContext(ctx)
	var err error
	for n := 1; ; n++ {
		attempt := parent.StartChild("rpc.attempt")
		if attempt != nil {
			attempt.SetAttr(otrace.String("rpc", typ), otrace.Int("attempt", n))
		}
		err = c.callOnce(attempt.Link(), addr, typ, payload, out, timeout)
		attempt.SetError(err)
		attempt.End()
		if c != nil {
			c.Metrics.observe(n, err)
		}
		if err == nil || (!IsTransport(err) && !IsOverloaded(err)) || n >= attempts {
			if err != nil && n > 1 {
				return fmt.Errorf("ishare: %d attempts: %w", n, err)
			}
			return err
		}
		c.clock().Sleep(c.nextJitter(n))
	}
}

// callOnce is one request/response exchange over a fresh connection. The
// link, when sampled, rides in the request envelope's trace header.
func callOnce(d Dialer, link otrace.Link, addr, typ string, payload, out interface{}, timeout time.Duration) error {
	conn, err := d.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return &transportError{fmt.Errorf("ishare: dial %s: %w", addr, err)}
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return &transportError{err}
	}
	return exchange(conn, link, typ, payload, out)
}
