package ishare

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/obs"
	"fgcs/internal/simclock"
)

func TestBreakerLifecycle(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	bs := NewBreakerSet(BreakerConfig{Threshold: 3, Cooldown: time.Minute}, clock)
	id := "lab-01"
	fail := errors.New("flake")

	if bs.State(id) != BreakerClosed {
		t.Fatalf("initial state = %v", bs.State(id))
	}
	// Two failures: still closed.
	for i := 0; i < 2; i++ {
		if !bs.Allow(id) {
			t.Fatalf("closed breaker denied request %d", i)
		}
		bs.Report(id, fail)
	}
	if bs.State(id) != BreakerClosed {
		t.Fatalf("state after 2 failures = %v", bs.State(id))
	}
	// A success resets the consecutive count.
	bs.Allow(id)
	bs.Report(id, nil)
	for i := 0; i < 2; i++ {
		bs.Allow(id)
		bs.Report(id, fail)
	}
	if bs.State(id) != BreakerClosed {
		t.Fatalf("state = %v: success did not reset the failure count", bs.State(id))
	}
	// Third consecutive failure opens it.
	bs.Allow(id)
	bs.Report(id, fail)
	if bs.State(id) != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", bs.State(id))
	}
	if bs.Allow(id) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	// Cooldown elapses: exactly one half-open probe is admitted.
	clock.Advance(time.Minute)
	if !bs.Allow(id) {
		t.Fatal("half-open breaker denied the probe")
	}
	if bs.Allow(id) {
		t.Fatal("second concurrent probe admitted while one is in flight")
	}
	// Probe fails: open again, fresh cooldown.
	bs.Report(id, fail)
	if bs.State(id) != BreakerOpen || bs.Allow(id) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	// Next cooldown, successful probe: closed.
	clock.Advance(time.Minute)
	if !bs.Allow(id) {
		t.Fatal("probe denied after second cooldown")
	}
	bs.Report(id, nil)
	if bs.State(id) != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", bs.State(id))
	}
	if !bs.Allow(id) {
		t.Fatal("closed breaker denied traffic")
	}
}

func TestInstrumentBreakers(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	bs := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Minute}, clock)
	r := obs.NewRegistry()
	InstrumentBreakers(bs, r)
	fail := errors.New("flake")

	// Trip two machines, recover one.
	for _, id := range []string{"m1", "m2"} {
		bs.Allow(id)
		bs.Report(id, fail)
	}
	clock.Advance(time.Minute)
	bs.Allow("m1") // half-open probe
	bs.Report("m1", nil)

	var text strings.Builder
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fgcs_breaker_transitions_total{to="open"} 2`,
		`fgcs_breaker_transitions_total{to="half-open"} 1`,
		`fgcs_breaker_transitions_total{to="closed"} 1`,
		"fgcs_breaker_open 1",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, text.String())
		}
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", int(s), s.String())
		}
	}
}

// failingAPI is a GatewayAPI stub whose QueryTR always fails with a
// transport error; it counts invocations.
type failingAPI struct {
	mu    sync.Mutex
	calls int
}

func (f *failingAPI) QueryTR(context.Context, QueryTRReq) (QueryTRResp, error) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	return QueryTRResp{}, &transportError{errors.New("unreachable")}
}
func (f *failingAPI) Submit(context.Context, SubmitReq) (SubmitResp, error) {
	return SubmitResp{}, errors.New("unreachable")
}
func (f *failingAPI) JobStatus(context.Context, JobStatusReq) (JobStatusResp, error) {
	return JobStatusResp{}, errors.New("unreachable")
}
func (f *failingAPI) Kill(context.Context, JobStatusReq) (JobStatusResp, error) {
	return JobStatusResp{}, errors.New("unreachable")
}

func (f *failingAPI) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// TestSchedulerBreakerQuarantine drives Rank against one dead and one
// healthy machine and asserts the dead one stops being queried once its
// breaker opens, then gets a probe after the cooldown.
func TestSchedulerBreakerQuarantine(t *testing.T) {
	now := time.Date(2005, 9, 2, 8, 30, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	sm, err := NewStateManager("solid", period, avail.DefaultConfig(), clock, historyMachine("solid", 11, -1), 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := NewGateway("solid", avail.DefaultConfig(), period, clock, sm)
	if err != nil {
		t.Fatal(err)
	}
	good.Record(now, sample(5, 400))

	dead := &failingAPI{}
	sched := &Scheduler{
		Candidates: []Candidate{
			{MachineID: "dead", API: dead},
			{MachineID: "solid", API: good},
		},
		Breakers: NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: time.Minute}, clock),
	}
	job := SubmitReq{Name: "job", WorkSeconds: 3600, MemMB: 50}

	// Ranks 1 and 2: the dead machine is queried and fails.
	for i := 1; i <= 2; i++ {
		ranked, fails, err := sched.Rank(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranked) != 1 || ranked[0].MachineID != "solid" {
			t.Fatalf("rank %d = %+v", i, ranked)
		}
		if len(fails) != 1 || fails[0].MachineID != "dead" || !fails[0].Transient() {
			t.Fatalf("rank %d failures = %v", i, fails)
		}
	}
	if dead.count() != 2 {
		t.Fatalf("dead machine queried %d times, want 2", dead.count())
	}
	// Rank 3: breaker open — skipped without an RPC, failure says so.
	_, fails, err := sched.Rank(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if dead.count() != 2 {
		t.Fatalf("open breaker still let %d queries through", dead.count()-2)
	}
	if len(fails) != 1 || !errors.Is(fails[0].Err, ErrCircuitOpen) {
		t.Fatalf("failures = %v, want circuit-open", fails)
	}
	// After the cooldown one probe goes through (and fails, re-opening).
	clock.Advance(time.Minute)
	if _, _, err := sched.Rank(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if dead.count() != 3 {
		t.Fatalf("probe count = %d, want exactly one probe after cooldown", dead.count()-2)
	}
	if _, _, err := sched.Rank(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if dead.count() != 3 {
		t.Fatal("re-opened breaker admitted traffic before the next cooldown")
	}
}
