package ishare

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/jobest"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
)

// supervisedPair builds two gateways on a shared virtual clock: "good"
// (clean history) and "bad" (fails daily at 9:00, so it ranks below).
func supervisedPair(t *testing.T, clock *simclock.Virtual) (good, bad *Gateway) {
	t.Helper()
	mk := func(id string, failHour int) *Gateway {
		sm, err := NewStateManager(id, period, avail.DefaultConfig(), clock, historyMachine(id, 11, failHour), 0)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGateway(id, avail.DefaultConfig(), period, clock, sm)
		if err != nil {
			t.Fatal(err)
		}
		g.Record(clock.Now(), sample(5, 400))
		return g
	}
	return mk("good", -1), mk("bad", 9)
}

// drive advances the virtual clock and concurrently feeds samples into the
// gateways so the supervisor's polling loop makes progress.
func drive(t *testing.T, clock *simclock.Virtual, done <-chan struct{}, feedFn func(now time.Time)) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-done:
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Error("supervised run did not finish")
			return
		}
		feedFn(clock.Now())
		clock.Advance(period)
		time.Sleep(50 * time.Microsecond)
	}
}

func TestSupervisorCompletesOnHealthyMachine(t *testing.T) {
	now := time.Date(2005, 9, 2, 8, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	good, bad := supervisedPair(t, clock)
	sv := &Supervisor{
		Sched: &Scheduler{Candidates: []Candidate{
			{MachineID: "good", API: good},
			{MachineID: "bad", API: bad},
		}},
		Clock:        clock,
		PollInterval: period,
	}
	var run JobRun
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		run, err = sv.Run(context.Background(), SubmitReq{Name: "job", WorkSeconds: 120, MemMB: 50})
	}()
	drive(t, clock, done, func(now time.Time) {
		good.Record(now, sample(5, 400))
		bad.Record(now, sample(5, 400))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed() || run.Migrations != 0 {
		t.Fatalf("run = %+v", run)
	}
	if len(run.Placements) != 1 || run.Placements[0].MachineID != "good" {
		t.Fatalf("placements = %+v", run.Placements)
	}
}

func TestSupervisorMigratesAfterKill(t *testing.T) {
	now := time.Date(2005, 9, 2, 8, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	good, bad := supervisedPair(t, clock)
	// Force the first placement onto "good"... then crash it mid-job so
	// the supervisor must migrate to "bad".
	sv := &Supervisor{
		Sched: &Scheduler{Candidates: []Candidate{
			{MachineID: "good", API: good},
			{MachineID: "bad", API: bad},
		}},
		Clock:        clock,
		PollInterval: period,
	}
	var run JobRun
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		run, err = sv.Run(context.Background(), SubmitReq{Name: "job", WorkSeconds: 600, MemMB: 50})
	}()
	var mu sync.Mutex
	killed := false
	drive(t, clock, done, func(now time.Time) {
		mu.Lock()
		defer mu.Unlock()
		// Crash "good" once its job is underway.
		if !killed && now.Sub(clock.Now()) == 0 {
			if st, err := good.JobStatus(context.Background(), JobStatusReq{JobID: "good-job-1"}); err == nil &&
				st.State == "running" && st.ProgressSeconds > 60 {
				good.Record(now, trace.Sample{Up: false})
				killed = true
				return
			}
		}
		good.Record(now, sample(5, 400))
		bad.Record(now, sample(5, 400))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed() {
		t.Fatalf("final = %+v", run.Final)
	}
	if run.Migrations != 1 || len(run.Placements) != 2 {
		t.Fatalf("run = %+v", run)
	}
	if run.Placements[0].MachineID != "good" || run.Placements[0].Outcome != "killed" {
		t.Fatalf("first placement = %+v", run.Placements[0])
	}
	if !strings.Contains(run.Placements[0].Reason, "S5") {
		t.Fatalf("kill reason = %q", run.Placements[0].Reason)
	}
	if run.Placements[1].MachineID != "bad" || run.Placements[1].Outcome != "completed" {
		t.Fatalf("second placement = %+v", run.Placements[1])
	}
	// Progress carried over: the second machine resumed, not restarted —
	// its job finished with full work recorded.
	if run.Final.ProgressSeconds != run.Final.WorkSeconds {
		t.Fatalf("final progress = %v/%v", run.Final.ProgressSeconds, run.Final.WorkSeconds)
	}
}

func TestSupervisorGivesUpAfterBudget(t *testing.T) {
	now := time.Date(2005, 9, 2, 8, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	good, _ := supervisedPair(t, clock)
	sv := &Supervisor{
		Sched:         &Scheduler{Candidates: []Candidate{{MachineID: "good", API: good}}},
		Clock:         clock,
		PollInterval:  period,
		MaxMigrations: Int(1),
		// Checkpoints always lost: every kill restarts from zero.
		CheckpointFraction: Float(0),
	}
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err = sv.Run(context.Background(), SubmitReq{Name: "job", WorkSeconds: 600, MemMB: 50})
	}()
	drive(t, clock, done, func(now time.Time) {
		// Permanently overloaded: every placement dies.
		good.Record(now, sample(95, 400))
	})
	if err == nil || !strings.Contains(err.Error(), "migration budget") {
		t.Fatalf("err = %v, want migration budget exhaustion", err)
	}
}

func TestSupervisorValidation(t *testing.T) {
	sv := &Supervisor{}
	if _, err := sv.Run(context.Background(), SubmitReq{Name: "x", WorkSeconds: 1}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
}

func TestSupervisorFeedsEstimator(t *testing.T) {
	now := time.Date(2005, 9, 2, 8, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	good, _ := supervisedPair(t, clock)
	est := jobest.New(jobest.Config{MinRuns: 2})
	sv := &Supervisor{
		Sched:        &Scheduler{Candidates: []Candidate{{MachineID: "good", API: good}}},
		Clock:        clock,
		PollInterval: period,
		Estimator:    est,
	}
	// No history yet: RunClass refuses.
	if _, err := sv.RunClass(context.Background(), "mc-sim"); err == nil {
		t.Fatal("class without history accepted")
	}
	// Two explicit runs build the history.
	for i := 0; i < 2; i++ {
		done := make(chan struct{})
		var err error
		go func() {
			defer close(done)
			_, err = sv.Run(context.Background(), SubmitReq{Name: "mc-sim", WorkSeconds: 120, MemMB: 64})
		}()
		drive(t, clock, done, func(now time.Time) {
			good.Record(now, sample(5, 400))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if est.Runs("mc-sim") != 2 {
		t.Fatalf("estimator runs = %d", est.Runs("mc-sim"))
	}
	// Now RunClass works from estimated requirements.
	done := make(chan struct{})
	var run JobRun
	var err error
	go func() {
		defer close(done)
		run, err = sv.RunClass(context.Background(), "mc-sim")
	}()
	drive(t, clock, done, func(now time.Time) {
		good.Record(now, sample(5, 400))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed() {
		t.Fatalf("estimated run = %+v", run.Final)
	}
	if run.Final.WorkSeconds != 120 {
		t.Fatalf("estimated work = %v, want 120 (P75 of identical runs)", run.Final.WorkSeconds)
	}
	// The estimated run itself was recorded too.
	if est.Runs("mc-sim") != 3 {
		t.Fatalf("estimator runs after RunClass = %d", est.Runs("mc-sim"))
	}
}

func TestRunClassWithoutEstimator(t *testing.T) {
	sv := &Supervisor{Sched: &Scheduler{}}
	if _, err := sv.RunClass(context.Background(), "x"); err == nil {
		t.Fatal("missing estimator accepted")
	}
}

// TestSupervisorDefaults pins the zero-value semantics of the pointer
// config fields: nil means "default", pointer-to-zero means zero. This is
// the regression test for the old int/float fields, whose zero values were
// silently remapped to 5 and 1.
func TestSupervisorDefaults(t *testing.T) {
	_, poll, max, cf := (&Supervisor{}).defaults()
	if poll != 6*time.Second || max != 5 || cf != 1 {
		t.Fatalf("nil defaults = (poll %v, max %d, cf %v), want (6s, 5, 1)", poll, max, cf)
	}
	_, _, max, cf = (&Supervisor{MaxMigrations: Int(0), CheckpointFraction: Float(0)}).defaults()
	if max != 0 || cf != 0 {
		t.Fatalf("explicit zeros = (max %d, cf %v), want (0, 0)", max, cf)
	}
	_, _, max, cf = (&Supervisor{MaxMigrations: Int(-1), CheckpointFraction: Float(2)}).defaults()
	if max != 5 || cf != 1 {
		t.Fatalf("out-of-range = (max %d, cf %v), want defaults (5, 1)", max, cf)
	}
}

// TestSupervisorZeroMigrationsMeansNoRecovery proves MaxMigrations:
// Int(0) disables migration entirely — the first kill is terminal.
func TestSupervisorZeroMigrationsMeansNoRecovery(t *testing.T) {
	now := time.Date(2005, 9, 2, 8, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	good, _ := supervisedPair(t, clock)
	sv := &Supervisor{
		Sched:         &Scheduler{Candidates: []Candidate{{MachineID: "good", API: good}}},
		Clock:         clock,
		PollInterval:  period,
		MaxMigrations: Int(0),
	}
	var run JobRun
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		run, err = sv.Run(context.Background(), SubmitReq{Name: "job", WorkSeconds: 600, MemMB: 50})
	}()
	drive(t, clock, done, func(now time.Time) {
		good.Record(now, sample(95, 400)) // permanently overloaded: dies fast
	})
	if err == nil || !strings.Contains(err.Error(), "migration budget") {
		t.Fatalf("err = %v, want immediate budget exhaustion", err)
	}
	if run.Migrations != 0 || len(run.Placements) != 1 {
		t.Fatalf("run = %+v, want exactly one placement and zero migrations", run)
	}
}

// downableAPI wraps a gateway; once down it fails every call with a
// transport error, modelling a partitioned machine. failFrom counts
// JobStatus polls: the Nth poll (1-based) and everything after it fail,
// until failFor polls have failed.
var errInjectedUnreachable = fmt.Errorf("machine unreachable")

type downableAPI struct {
	GatewayAPI
	mu       sync.Mutex
	polls    int
	failFrom int
	failFor  int
}

func (d *downableAPI) down() bool {
	return d.polls >= d.failFrom && d.polls < d.failFrom+d.failFor
}

func (d *downableAPI) JobStatus(ctx context.Context, req JobStatusReq) (JobStatusResp, error) {
	d.mu.Lock()
	d.polls++
	bad := d.down()
	d.mu.Unlock()
	if bad {
		return JobStatusResp{}, &transportError{errInjectedUnreachable}
	}
	return d.GatewayAPI.JobStatus(context.Background(), req)
}

func (d *downableAPI) QueryTR(ctx context.Context, req QueryTRReq) (QueryTRResp, error) {
	d.mu.Lock()
	bad := d.down()
	d.mu.Unlock()
	if bad {
		return QueryTRResp{}, &transportError{errInjectedUnreachable}
	}
	return d.GatewayAPI.QueryTR(context.Background(), req)
}

func (d *downableAPI) Submit(ctx context.Context, req SubmitReq) (SubmitResp, error) {
	d.mu.Lock()
	bad := d.down()
	d.mu.Unlock()
	if bad {
		return SubmitResp{}, &transportError{errInjectedUnreachable}
	}
	return d.GatewayAPI.Submit(context.Background(), req)
}

// TestSupervisorGraceForgivesTransientFlakes: two failed polls inside a
// three-poll grace window are forgiven; the job completes in one placement
// with the flakes counted.
func TestSupervisorGraceForgivesTransientFlakes(t *testing.T) {
	now := time.Date(2005, 9, 2, 8, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	good, _ := supervisedPair(t, clock)
	flaky := &downableAPI{GatewayAPI: good, failFrom: 3, failFor: 2}
	sv := &Supervisor{
		Sched:            &Scheduler{Candidates: []Candidate{{MachineID: "good", API: flaky}}},
		Clock:            clock,
		PollInterval:     period,
		UnreachableGrace: 3 * period,
	}
	var run JobRun
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		run, err = sv.Run(context.Background(), SubmitReq{Name: "job", WorkSeconds: 120, MemMB: 50})
	}()
	drive(t, clock, done, func(now time.Time) {
		good.Record(now, sample(5, 400))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed() || run.Migrations != 0 || len(run.Placements) != 1 {
		t.Fatalf("run = %+v, want completion in one placement", run)
	}
	if run.TransientErrors != 2 {
		t.Fatalf("TransientErrors = %d, want 2", run.TransientErrors)
	}
}

// TestSupervisorSustainedUnreachabilityMigrates: when polls keep failing
// past the grace window the machine is declared unreachable (URR) and the
// job migrates with its last known progress.
func TestSupervisorSustainedUnreachabilityMigrates(t *testing.T) {
	now := time.Date(2005, 9, 2, 8, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	good, bad := supervisedPair(t, clock)
	// "good" ranks first, then partitions forever after its 3rd poll.
	parted := &downableAPI{GatewayAPI: good, failFrom: 3, failFor: 1 << 30}
	sv := &Supervisor{
		Sched: &Scheduler{Candidates: []Candidate{
			{MachineID: "good", API: parted},
			{MachineID: "bad", API: bad},
		}},
		Clock:            clock,
		PollInterval:     period,
		UnreachableGrace: 2 * period,
	}
	var run JobRun
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		run, err = sv.Run(context.Background(), SubmitReq{Name: "job", WorkSeconds: 300, MemMB: 50})
	}()
	drive(t, clock, done, func(now time.Time) {
		good.Record(now, sample(5, 400))
		bad.Record(now, sample(5, 400))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed() || run.Migrations != 1 || len(run.Placements) != 2 {
		t.Fatalf("run = %+v, want one URR migration", run)
	}
	if run.Placements[0].MachineID != "good" || !strings.Contains(run.Placements[0].Reason, "URR") {
		t.Fatalf("first placement = %+v, want URR kill on good", run.Placements[0])
	}
	if run.Placements[1].MachineID != "bad" || run.Placements[1].Outcome != "completed" {
		t.Fatalf("second placement = %+v", run.Placements[1])
	}
	// The first failed poll was inside the grace window and forgiven.
	if run.TransientErrors != 1 {
		t.Fatalf("TransientErrors = %d, want 1", run.TransientErrors)
	}
}
