// Federation: the multi-gateway control plane. N gateway processes form a
// static peer ring; registry entries (machine -> host-gateway address) are
// sharded across peers by consistent hashing on the machine name and
// replicated to each machine's successor peers, and any peer transparently
// forwards machine-scoped RPCs it cannot serve from its own shard. Peer
// hops ride the same Caller retry/breaker/trace stack as every other RPC,
// so a forwarded request renders as one stitched span tree.
package ishare

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"fgcs/internal/otrace"
	"fgcs/internal/simclock"
)

// Federation request types.
const (
	MsgFedQueryTR   = "fed-query-tr"   // client -> any peer (machine-scoped QueryTR)
	MsgFedSubmit    = "fed-submit"     // client -> any peer (machine-scoped Submit)
	MsgFedJobStatus = "fed-job-status" // client -> any peer (machine-scoped JobStatus)
	MsgFedKill      = "fed-kill"       // client -> any peer (machine-scoped Kill)
	MsgFedRank      = "fed-rank"       // client -> any peer (federation-wide ranking)
	MsgFedSync      = "fed-sync"       // peer -> peer (replication / anti-entropy push)
)

// FedQueryTRReq routes a QueryTR to the named machine through the
// federation.
type FedQueryTRReq struct {
	// Machine names the target host node (the sharding key).
	Machine string `json:"machine"`
	// Local marks a request already forwarded once: the receiving peer
	// must serve it from its own shard or fail, never re-forward. This is
	// what bounds a request to at most one peer hop even if two peers
	// momentarily disagree about ownership.
	Local bool `json:"local,omitempty"`
	// Query is the request proxied to the machine's gateway.
	Query QueryTRReq `json:"query"`
}

// FedSubmitReq routes a Submit to the named machine through the federation.
// The entry peer attaches an idempotency key before any hop, so peer
// forwarding and machine retries are replay-safe end to end.
type FedSubmitReq struct {
	Machine string    `json:"machine"`
	Local   bool      `json:"local,omitempty"`
	Job     SubmitReq `json:"job"`
}

// FedJobReq routes a JobStatus or Kill to the named machine through the
// federation (the verb is the message type).
type FedJobReq struct {
	Machine string       `json:"machine"`
	Local   bool         `json:"local,omitempty"`
	Job     JobStatusReq `json:"job"`
}

// FedRankReq asks a peer to rank every machine in the federation by
// temporal reliability for a prospective job, wherever each machine's
// entry lives.
type FedRankReq struct {
	LengthSeconds float64 `json:"length_seconds"`
	GuestMemMB    float64 `json:"guest_mem_mb"`
}

// FedRanked is one machine's entry in a federation-wide ranking.
type FedRanked struct {
	MachineID      string  `json:"machine_id"`
	TR             float64 `json:"tr"`
	HistoryWindows int     `json:"history_windows"`
	CurrentState   string  `json:"current_state"`
}

// FedRankFailure explains why one machine is missing from a ranking.
type FedRankFailure struct {
	MachineID string `json:"machine_id"`
	Err       string `json:"err"`
	// Transient marks transport-level failures (flake, dead peer,
	// quarantine) as opposed to an application rejection.
	Transient bool `json:"transient,omitempty"`
}

// FedRankResp is the federation-wide ranking, best machine first.
type FedRankResp struct {
	// Entry is the peer that served the ranking.
	Entry    string           `json:"entry"`
	Ranked   []FedRanked      `json:"ranked,omitempty"`
	Failures []FedRankFailure `json:"failures,omitempty"`
}

// FedEntry is one registry entry on the replication wire, carrying its
// remaining TTL (0 = never expires) so receivers rebuild an absolute
// expiry against their own clock.
type FedEntry struct {
	MachineID  string  `json:"machine_id"`
	Addr       string  `json:"addr"`
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// FedSyncReq pushes registry entries to a peer: single entries during
// synchronous replication on register, batches during anti-entropy rounds.
type FedSyncReq struct {
	// From identifies the pushing peer (empty for non-peer tooling).
	From    string     `json:"from,omitempty"`
	Entries []FedEntry `json:"entries"`
}

// FedSyncResp reports how many pushed entries the receiver actually
// applied (already-fresh entries are counted as accepted no-ops).
type FedSyncResp struct {
	Accepted int `json:"accepted"`
}

// RingPeerStats is one ring member's row in a peer's query-stats snapshot.
type RingPeerStats struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Self marks the peer serving the snapshot.
	Self bool `json:"self,omitempty"`
	// Breaker is this peer's circuit state as seen from the serving peer
	// (closed / open / half-open); absent for self.
	Breaker string `json:"breaker,omitempty"`
	// LastSyncAgeSeconds is how long ago the serving peer last received an
	// anti-entropy push from this peer (-1 = never; absent for self).
	LastSyncAgeSeconds float64 `json:"last_sync_age_seconds,omitempty"`
	// OwnedEntries counts the live entries in the serving peer's shard
	// that this ring member owns.
	OwnedEntries int `json:"owned_entries"`
}

// RingStats is a federation peer's view of the ring, served inside
// query-stats so `isharec stats` can show shard placement and peer health.
type RingStats struct {
	Self     string `json:"self"`
	Vnodes   int    `json:"vnodes"`
	Replicas int    `json:"replicas"`
	// Entries / Owned / Replicated break down the live entries in this
	// peer's shard: total, owned by this peer, held as a replica.
	Entries    int `json:"entries"`
	Owned      int `json:"owned"`
	Replicated int `json:"replicated"`
	// Served counts machine RPCs answered from the local shard; Forwarded
	// counts those handed to another peer.
	Served    uint64 `json:"served"`
	Forwarded uint64 `json:"forwarded"`
	// SyncPushed / SyncAccepted count replication entries sent to and
	// applied from peers.
	SyncPushed   uint64          `json:"sync_pushed"`
	SyncAccepted uint64          `json:"sync_accepted"`
	Peers        []RingPeerStats `json:"peers"`
}

// fedUnknownMachine prefixes the application error a peer returns when a
// machine-scoped request names a machine absent from its shard. Routing
// treats it as "try the next replica", unlike any other application error.
const fedUnknownMachine = "fed: machine not registered"

// isUnknownMachine reports whether err is a peer's fedUnknownMachine
// rejection (it crosses the wire as a RemoteError).
func isUnknownMachine(err error) bool {
	if err == nil {
		return false
	}
	return strings.Contains(err.Error(), fedUnknownMachine)
}

// FedConfig assembles one federation peer.
type FedConfig struct {
	// Self is this peer's identity; it must also appear in Peers.
	Self Peer
	// Peers is the full static ring membership, including Self.
	Peers []Peer
	// Vnodes is the virtual-node count per peer (<= 0 = DefaultVnodes).
	Vnodes int
	// Replicas is how many successor peers mirror each entry beyond its
	// owner (< 0 = none, 0 = DefaultReplicas, capped at len(Peers)-1).
	Replicas int
	// Caller performs peer and machine RPCs (nil = single-attempt calls
	// over the real network). Give it a retry policy in production: peer
	// hops and machine proxying inherit it.
	Caller *Caller
	// Breakers, when set, quarantines unreachable peers so routing skips
	// them without burning a dial timeout per request.
	Breakers *BreakerSet
	// Timeout bounds each RPC hop (0 = 5 s).
	Timeout time.Duration
	// Clock drives entry expiry and sync timing (nil = wall clock).
	Clock simclock.Clock
	// Logger receives WARN records for replication and routing degradation
	// (nil = silent).
	Logger *slog.Logger
	// Tracer mints spans for served federation RPCs (nil = untraced).
	Tracer *otrace.Tracer
	// Obs, when set, counts served RPCs in the node metric families
	// (fgcs_gateway_requests_total etc.).
	Obs *NodeObs
}

// fedEntry is one stored registry entry.
type fedEntry struct {
	res     Resource
	expires time.Time // zero = never
}

// FedGateway is one peer of the federated control plane. It stores the
// shard of the machine registry it owns or replicates, serves machine
// RPCs for machines in that shard by proxying to the machine's host
// gateway, forwards everything else to the machine's owner (or the owner's
// successors while the owner is down), and pushes its entries to their
// replica peers both synchronously on register and periodically via
// anti-entropy.
type FedGateway struct {
	self     Peer
	ring     *Ring
	replicas int
	caller   *Caller
	breakers *BreakerSet
	timeout  time.Duration
	clock    simclock.Clock
	logger   *slog.Logger
	tracer   *otrace.Tracer
	obs      *NodeObs

	mu                                          sync.Mutex
	entries                                     map[string]fedEntry
	lastSync                                    map[string]time.Time
	served, forwarded, syncPushed, syncAccepted uint64

	// Readiness state (guarded by mu): SyncOnce records each round's
	// outcome and Ready (obsplane.go) derives convergence from it.
	syncRounds        uint64
	lastRoundAccepted int
	lastRoundOK       bool
	recoveryPending   bool

	// obsCache holds each peer's last good query-obs export so a fleet
	// snapshot during an outage merges stale-marked data instead of
	// dropping the peer (obsplane.go).
	obsCacheMu sync.Mutex
	obsCache   map[string]cachedPeerObs

	// sink, when set, is told about every shard upsert (register and
	// accepted sync alike) so the persistence layer can log it. Collected
	// under f.mu, invoked after release: a record logged before a
	// concurrent snapshot's captured WAL position is already in that
	// snapshot's Export, and one logged after it is replayed on recovery
	// as an idempotent upsert.
	sink func(e RegEntry, removed bool)
}

// NewFedGateway validates the membership and builds the peer. The ring is
// immutable afterwards: federation membership is fixed per process (every
// peer must agree on it), and a dead peer is routed around rather than
// removed.
func NewFedGateway(cfg FedConfig) (*FedGateway, error) {
	if cfg.Self.ID == "" || cfg.Self.Addr == "" {
		return nil, fmt.Errorf("ishare: federation peer needs id and address")
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("ishare: federation needs at least one peer")
	}
	ring := NewRing(cfg.Vnodes)
	selfListed := false
	for _, p := range cfg.Peers {
		if err := ring.Add(p); err != nil {
			return nil, err
		}
		if p.ID == cfg.Self.ID {
			selfListed = true
		}
	}
	if !selfListed {
		return nil, fmt.Errorf("ishare: federation peer %q not in peer list", cfg.Self.ID)
	}
	replicas := cfg.Replicas
	if replicas == 0 {
		replicas = DefaultReplicas
	}
	if replicas < 0 {
		replicas = 0
	}
	if replicas > len(cfg.Peers)-1 {
		replicas = len(cfg.Peers) - 1
	}
	caller := cfg.Caller
	if caller == nil {
		caller = &Caller{}
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	return &FedGateway{
		self:     cfg.Self,
		ring:     ring,
		replicas: replicas,
		caller:   caller,
		breakers: cfg.Breakers,
		timeout:  timeout,
		clock:    clock,
		logger:   cfg.Logger,
		tracer:   cfg.Tracer,
		obs:      cfg.Obs,
		entries:  make(map[string]fedEntry),
		lastSync: make(map[string]time.Time),
	}, nil
}

// Self returns this peer's identity.
func (f *FedGateway) Self() Peer { return f.self }

// fanout is the size of each key's candidate set: the owner plus its
// replicas.
func (f *FedGateway) fanout() int { return 1 + f.replicas }

// Candidates returns the replica set (owner first) for a machine name, in
// routing order.
func (f *FedGateway) Candidates(machine string) []Peer {
	return f.ring.Successors(machine, f.fanout())
}

// store upserts a registry entry with an absolute expiry built from ttl
// (<= 0 = never expires).
func (f *FedGateway) store(machine, addr string, ttl time.Duration) {
	var expires time.Time
	if ttl > 0 {
		expires = f.clock.Now().Add(ttl)
	}
	f.mu.Lock()
	f.entries[machine] = fedEntry{res: Resource{MachineID: machine, Addr: addr}, expires: expires}
	sink := f.sink
	f.mu.Unlock()
	if sink != nil {
		sink(RegEntry{Machine: machine, Addr: addr, Expires: expires}, false)
	}
}

// SetSink installs the persistence hook for shard changes. Call before the
// peer starts serving. Lazy expiry reaps are not reported — the persisted
// absolute deadlines re-expire on their own after a restart.
func (f *FedGateway) SetSink(fn func(e RegEntry, removed bool)) {
	f.mu.Lock()
	f.sink = fn
	f.mu.Unlock()
}

// Export snapshots this peer's shard (including entries awaiting lazy
// expiry) in sorted order for durable storage.
func (f *FedGateway) Export() []RegEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]RegEntry, 0, len(f.entries))
	for id, ent := range f.entries {
		out = append(out, RegEntry{Machine: id, Addr: ent.res.Addr, Expires: ent.expires})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// Restore upserts recovered shard entries without firing the sink or
// counting them as sync traffic. Already-expired entries are installed and
// left to the lazy reap, mirroring Registry.Restore.
func (f *FedGateway) Restore(entries []RegEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range entries {
		if e.Machine == "" {
			continue
		}
		f.entries[e.Machine] = fedEntry{
			res:     Resource{MachineID: e.Machine, Addr: e.Addr},
			expires: e.Expires,
		}
	}
}

// RestoreRemove replays a logged removal without firing the sink.
func (f *FedGateway) RestoreRemove(machine string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.entries, machine)
}

// lookup returns the live entry for a machine, treating expired entries as
// absent (they are reaped lazily here and in SyncOnce).
func (f *FedGateway) lookup(machine string) (fedEntry, bool) {
	now := f.clock.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	ent, ok := f.entries[machine]
	if !ok {
		return fedEntry{}, false
	}
	if !ent.expires.IsZero() && !now.Before(ent.expires) {
		delete(f.entries, machine)
		return fedEntry{}, false
	}
	return ent, true
}

// localResources lists the live entries in this peer's shard, sorted by
// machine ID.
func (f *FedGateway) localResources() []Resource {
	now := f.clock.Now()
	f.mu.Lock()
	out := make([]Resource, 0, len(f.entries))
	for id, ent := range f.entries {
		if !ent.expires.IsZero() && !now.Before(ent.expires) {
			delete(f.entries, id)
			continue
		}
		out = append(out, ent.res)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].MachineID < out[j].MachineID })
	return out
}

// warn logs at WARN level when a logger is installed.
func (f *FedGateway) warn(msg string, args ...interface{}) {
	if f.logger != nil {
		f.logger.Warn(msg, args...)
	}
}

// callPeer performs one peer RPC with retries, routed through the peer's
// circuit breaker when one is configured. A quarantined peer fails fast
// with a transport-class error so routing falls through to the next
// replica, and only transport outcomes feed the breaker — an application
// error proves the peer alive.
func (f *FedGateway) callPeer(ctx context.Context, p Peer, typ string, payload, out interface{}, retry bool) error {
	if f.breakers != nil && !f.breakers.Allow(p.ID) {
		return &transportError{err: fmt.Errorf("ishare: peer %s: %w", p.ID, ErrCircuitOpen)}
	}
	var err error
	if retry {
		err = f.caller.CallRetry(ctx, p.Addr, typ, payload, out, f.timeout)
	} else {
		err = f.caller.Call(ctx, p.Addr, typ, payload, out, f.timeout)
	}
	if f.breakers != nil {
		if IsTransport(err) || IsOverloaded(err) {
			// The breaker counts overloaded sheds separately from
			// transport faults and never opens on them.
			f.breakers.Report(p.ID, err)
		} else {
			f.breakers.Report(p.ID, nil)
		}
	}
	return err
}

// register routes a machine registration to its owner peer and replicates
// it. A registration entering at a non-candidate peer is forwarded to the
// first live member of the machine's replica set; the receiving candidate
// stores it and pushes it to the other candidates synchronously, so an
// entry is fault tolerant the moment the register ACKs. If every candidate
// is unreachable the entry peer stores the entry itself as a stray —
// queries entering here still work, and anti-entropy repairs placement
// once candidates return.
func (f *FedGateway) register(ctx context.Context, reg RegisterReq) error {
	if reg.MachineID == "" || reg.Addr == "" {
		return fmt.Errorf("fed: registration needs machine id and address")
	}
	ttl := time.Duration(reg.TTLSeconds * float64(time.Second))
	if reg.Forwarded {
		f.store(reg.MachineID, reg.Addr, ttl)
		f.replicateEntry(ctx, reg.MachineID, reg.Addr, ttl)
		return nil
	}
	for _, p := range f.Candidates(reg.MachineID) {
		if p.ID == f.self.ID {
			f.store(reg.MachineID, reg.Addr, ttl)
			f.replicateEntry(ctx, reg.MachineID, reg.Addr, ttl)
			return nil
		}
		fwd := reg
		fwd.Forwarded = true
		err := f.callPeer(ctx, p, MsgRegister, fwd, nil, true)
		if err == nil {
			f.addForwarded()
			return nil
		}
		if !IsTransport(err) {
			return err
		}
		f.warn("fed register forward failed", "machine", reg.MachineID, "peer", p.ID, "err", err)
	}
	f.warn("fed register stored off-placement: no candidate reachable", "machine", reg.MachineID)
	f.store(reg.MachineID, reg.Addr, ttl)
	return nil
}

// replicateEntry pushes one entry to the other members of its replica set,
// best effort: a dead replica is only logged (anti-entropy retries later).
func (f *FedGateway) replicateEntry(ctx context.Context, machine, addr string, ttl time.Duration) {
	ent := FedEntry{MachineID: machine, Addr: addr, TTLSeconds: ttl.Seconds()}
	if ttl <= 0 {
		ent.TTLSeconds = 0
	}
	for _, p := range f.Candidates(machine) {
		if p.ID == f.self.ID {
			continue
		}
		req := FedSyncReq{From: f.self.ID, Entries: []FedEntry{ent}}
		if err := f.callPeer(ctx, p, MsgFedSync, req, nil, true); err != nil {
			f.warn("fed replicate failed", "machine", machine, "peer", p.ID, "err", err)
			continue
		}
		f.addSyncPushed(1)
	}
}

// fedSync applies a replication push: each entry is upserted when it is
// new here, fresher (later expiry) than what is stored, or replaces an
// expired entry. Older pushes lose, so a stale anti-entropy round cannot
// roll back a heartbeat refresh.
func (f *FedGateway) fedSync(req FedSyncReq) FedSyncResp {
	now := f.clock.Now()
	f.mu.Lock()
	if req.From != "" {
		f.lastSync[req.From] = now
	}
	var applied []RegEntry
	accepted := 0
	for _, e := range req.Entries {
		if e.MachineID == "" || e.Addr == "" {
			continue
		}
		var expires time.Time
		if e.TTLSeconds > 0 {
			expires = now.Add(time.Duration(e.TTLSeconds * float64(time.Second)))
		}
		cur, ok := f.entries[e.MachineID]
		if ok && !fresher(cur, expires, now) {
			continue
		}
		f.entries[e.MachineID] = fedEntry{res: Resource{MachineID: e.MachineID, Addr: e.Addr}, expires: expires}
		accepted++
		if f.sink != nil {
			applied = append(applied, RegEntry{Machine: e.MachineID, Addr: e.Addr, Expires: expires})
		}
	}
	f.syncAccepted += uint64(accepted)
	sink := f.sink
	f.mu.Unlock()
	if sink != nil {
		for _, e := range applied {
			sink(e, false)
		}
	}
	return FedSyncResp{Accepted: accepted}
}

// fedFreshSlack is the minimum expiry gain before a re-pushed entry counts
// as fresher. Anti-entropy ships remaining TTLs, and the receiver re-anchors
// them at its own clock, so every round trip shifts the recomputed expiry by
// the delivery latency — without slack those jitter-sized "gains" are
// accepted forever and the ring never reports converged under wall clocks
// (a heartbeat refresh extends the expiry by whole seconds and still wins).
const fedFreshSlack = 500 * time.Millisecond

// fresher reports whether an incoming entry expiring at `expires` should
// replace cur.
func fresher(cur fedEntry, expires time.Time, now time.Time) bool {
	if !cur.expires.IsZero() && !now.Before(cur.expires) {
		return true // current entry already expired
	}
	if cur.expires.IsZero() {
		return false // current entry never expires
	}
	return expires.IsZero() || expires.After(cur.expires.Add(fedFreshSlack))
}

// SyncOnce runs one anti-entropy round: every live local entry is pushed,
// with its remaining TTL, to the other members of its replica set. Peers
// are contacted in sorted order and each gets one batched push. Returns
// the number of entries sent (counting each peer delivery). The round's
// outcome — every push delivered, how many entries peers newly accepted —
// feeds Ready's convergence check.
func (f *FedGateway) SyncOnce(ctx context.Context) int {
	now := f.clock.Now()
	batches := make(map[string][]FedEntry)
	addrs := make(map[string]Peer)
	f.mu.Lock()
	for id, ent := range f.entries {
		if !ent.expires.IsZero() && !now.Before(ent.expires) {
			delete(f.entries, id)
			continue
		}
		we := FedEntry{MachineID: id, Addr: ent.res.Addr}
		if !ent.expires.IsZero() {
			we.TTLSeconds = ent.expires.Sub(now).Seconds()
		}
		for _, p := range f.Candidates(id) {
			if p.ID == f.self.ID {
				continue
			}
			batches[p.ID] = append(batches[p.ID], we)
			addrs[p.ID] = p
		}
	}
	f.mu.Unlock()
	peerIDs := make([]string, 0, len(batches))
	for id := range batches {
		peerIDs = append(peerIDs, id)
	}
	sort.Strings(peerIDs)
	sent := 0
	accepted := 0
	allOK := true
	for _, id := range peerIDs {
		batch := batches[id]
		sort.Slice(batch, func(i, j int) bool { return batch[i].MachineID < batch[j].MachineID })
		req := FedSyncReq{From: f.self.ID, Entries: batch}
		var sr FedSyncResp
		if err := f.callPeer(ctx, addrs[id], MsgFedSync, req, &sr, true); err != nil {
			f.warn("fed anti-entropy push failed", "peer", id, "entries", len(batch), "err", err)
			allOK = false
			continue
		}
		sent += len(batch)
		accepted += sr.Accepted
		f.addSyncPushed(uint64(len(batch)))
	}
	f.mu.Lock()
	f.syncRounds++
	f.lastRoundAccepted = accepted
	f.lastRoundOK = allOK
	f.mu.Unlock()
	return sent
}

// StartSync runs anti-entropy rounds every interval until the returned
// stop function is called. This is the heartbeat that heals replicas after
// a peer restart and keeps remaining-TTL views converged.
func (f *FedGateway) StartSync(every time.Duration) (stop func()) {
	if every <= 0 {
		every = 30 * time.Second
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-f.clock.After(every):
				f.SyncOnce(context.Background())
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// route serves one machine-scoped request: from the local shard when this
// peer holds the machine's entry (serve), otherwise by forwarding the
// fed request to the machine's candidate peers in ring order. Transport
// failures and unknown-machine rejections fall through to the next
// candidate; any other application error is authoritative. A request
// marked local is never re-forwarded.
func (f *FedGateway) route(ctx context.Context, machine string, local bool, fedType string, fedReq, out interface{}, retry bool, serve func(addr string) error) error {
	if machine == "" {
		return fmt.Errorf("fed: request needs a machine")
	}
	if local {
		ent, ok := f.lookup(machine)
		if !ok {
			return fmt.Errorf("%s: %q", fedUnknownMachine, machine)
		}
		f.addServed()
		return serve(ent.res.Addr)
	}
	var lastErr error
	for _, p := range f.Candidates(machine) {
		if p.ID == f.self.ID {
			ent, ok := f.lookup(machine)
			if !ok {
				continue
			}
			f.addServed()
			return serve(ent.res.Addr)
		}
		err := f.callPeer(ctx, p, fedType, fedReq, out, retry)
		if err == nil {
			f.addForwarded()
			return nil
		}
		if IsTransport(err) || IsOverloaded(err) || isUnknownMachine(err) {
			lastErr = err
			continue
		}
		return err
	}
	// Off-placement stray (every candidate was down at register time)?
	if ent, ok := f.lookup(machine); ok {
		f.addServed()
		return serve(ent.res.Addr)
	}
	if lastErr != nil {
		return fmt.Errorf("fed: machine %q unreachable on every replica: %w", machine, lastErr)
	}
	return fmt.Errorf("%s: %q", fedUnknownMachine, machine)
}

// FedQueryTR serves or forwards a federated QueryTR.
func (f *FedGateway) FedQueryTR(ctx context.Context, req FedQueryTRReq) (QueryTRResp, error) {
	var resp QueryTRResp
	fwd := req
	fwd.Local = true
	err := f.route(ctx, req.Machine, req.Local, MsgFedQueryTR, fwd, &resp, true, func(addr string) error {
		return f.caller.CallRetry(ctx, addr, MsgQueryTR, req.Query, &resp, f.timeout)
	})
	return resp, err
}

// FedSubmit serves or forwards a federated Submit. The entry peer attaches
// an idempotency key before the first hop (unless the client already chose
// one), making every downstream retry — peer hop or machine attempt —
// replay-safe.
func (f *FedGateway) FedSubmit(ctx context.Context, req FedSubmitReq) (SubmitResp, error) {
	if !req.Local && req.Job.IdempotencyKey == "" {
		req.Job.IdempotencyKey = f.caller.NextKey("fed/" + req.Machine)
	}
	var resp SubmitResp
	fwd := req
	fwd.Local = true
	err := f.route(ctx, req.Machine, req.Local, MsgFedSubmit, fwd, &resp, true, func(addr string) error {
		return f.caller.CallRetry(ctx, addr, MsgSubmit, req.Job, &resp, f.timeout)
	})
	return resp, err
}

// FedJobStatus serves or forwards a federated JobStatus.
func (f *FedGateway) FedJobStatus(ctx context.Context, req FedJobReq) (JobStatusResp, error) {
	var resp JobStatusResp
	fwd := req
	fwd.Local = true
	err := f.route(ctx, req.Machine, req.Local, MsgFedJobStatus, fwd, &resp, true, func(addr string) error {
		return f.caller.CallRetry(ctx, addr, MsgJobStatus, req.Job, &resp, f.timeout)
	})
	return resp, err
}

// FedKill serves or forwards a federated Kill. Like RemoteGateway.Kill,
// the machine hop gets a single attempt (killing twice is an application
// error); peer hops are not retried either, so a lost ACK is surfaced to
// the client, which can confirm the outcome with FedJobStatus.
func (f *FedGateway) FedKill(ctx context.Context, req FedJobReq) (JobStatusResp, error) {
	var resp JobStatusResp
	fwd := req
	fwd.Local = true
	err := f.route(ctx, req.Machine, req.Local, MsgFedKill, fwd, &resp, false, func(addr string) error {
		return f.caller.Call(ctx, addr, MsgKillJob, req.Job, &resp, f.timeout)
	})
	return resp, err
}

// globalResources merges every peer's live shard into one sorted view:
// this peer's entries plus a local-only discover against each other peer.
// Unreachable peers are skipped — with replication the survivors still
// cover their shards.
func (f *FedGateway) globalResources(ctx context.Context) []Resource {
	merged := make(map[string]Resource)
	for _, r := range f.localResources() {
		merged[r.MachineID] = r
	}
	for _, p := range f.ring.Peers() {
		if p.ID == f.self.ID {
			continue
		}
		var dr DiscoverResp
		if err := f.callPeer(ctx, p, MsgDiscover, DiscoverReq{Local: true}, &dr, true); err != nil {
			f.warn("fed discover fan-out failed", "peer", p.ID, "err", err)
			continue
		}
		for _, r := range dr.Resources {
			merged[r.MachineID] = r
		}
	}
	out := make([]Resource, 0, len(merged))
	for _, r := range merged {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MachineID < out[j].MachineID })
	return out
}

// FedRank ranks every machine in the federation by temporal reliability
// for a prospective job: the global machine list is assembled from all
// reachable shards, each machine is queried through normal federated
// routing (so entries owned elsewhere are forwarded), and the results are
// sorted by TR descending with a stable order on ties. Machines that fail
// to answer are reported, not fatal.
func (f *FedGateway) FedRank(ctx context.Context, req FedRankReq) (FedRankResp, error) {
	resp := FedRankResp{Entry: f.self.ID}
	machines := f.globalResources(ctx)
	if len(machines) == 0 {
		return resp, fmt.Errorf("fed: no machines registered")
	}
	q := QueryTRReq{LengthSeconds: req.LengthSeconds, GuestMemMB: req.GuestMemMB}
	for _, m := range machines {
		tr, err := f.FedQueryTR(ctx, FedQueryTRReq{Machine: m.MachineID, Query: q})
		if err != nil {
			resp.Failures = append(resp.Failures, FedRankFailure{
				MachineID: m.MachineID,
				Err:       err.Error(),
				Transient: IsTransport(err) || IsOverloaded(err),
			})
			continue
		}
		resp.Ranked = append(resp.Ranked, FedRanked{
			MachineID:      m.MachineID,
			TR:             tr.TR,
			HistoryWindows: tr.HistoryWindows,
			CurrentState:   tr.CurrentState,
		})
	}
	sort.SliceStable(resp.Ranked, func(i, j int) bool { return resp.Ranked[i].TR > resp.Ranked[j].TR })
	return resp, nil
}

// RingStats snapshots this peer's view of the ring for query-stats.
func (f *FedGateway) RingStats() *RingStats {
	now := f.clock.Now()
	st := &RingStats{
		Self:     f.self.ID,
		Vnodes:   f.ring.Vnodes(),
		Replicas: f.replicas,
	}
	ownerCount := make(map[string]int)
	f.mu.Lock()
	for id, ent := range f.entries {
		if !ent.expires.IsZero() && !now.Before(ent.expires) {
			continue
		}
		st.Entries++
		owner, _ := f.ring.Owner(id)
		ownerCount[owner.ID]++
		if owner.ID == f.self.ID {
			st.Owned++
		} else {
			st.Replicated++
		}
	}
	st.Served = f.served
	st.Forwarded = f.forwarded
	st.SyncPushed = f.syncPushed
	st.SyncAccepted = f.syncAccepted
	lastSync := make(map[string]time.Time, len(f.lastSync))
	for id, t := range f.lastSync {
		lastSync[id] = t
	}
	f.mu.Unlock()
	for _, p := range f.ring.Peers() {
		row := RingPeerStats{ID: p.ID, Addr: p.Addr, OwnedEntries: ownerCount[p.ID]}
		if p.ID == f.self.ID {
			row.Self = true
		} else {
			if f.breakers != nil {
				row.Breaker = f.breakers.State(p.ID).String()
			}
			if t, ok := lastSync[p.ID]; ok {
				row.LastSyncAgeSeconds = now.Sub(t).Seconds()
			} else {
				row.LastSyncAgeSeconds = -1
			}
		}
		st.Peers = append(st.Peers, row)
	}
	return st
}

func (f *FedGateway) addServed()             { f.mu.Lock(); f.served++; f.mu.Unlock() }
func (f *FedGateway) addForwarded()          { f.mu.Lock(); f.forwarded++; f.mu.Unlock() }
func (f *FedGateway) addSyncPushed(n uint64) { f.mu.Lock(); f.syncPushed += n; f.mu.Unlock() }

// Handler wires the peer into a protocol server, mirroring the host
// gateway's serving shell: every request gets a fed.dispatch span stitched
// to the caller's trace, and outcomes feed the node metric families when
// observability is attached.
func (f *FedGateway) Handler() Handler {
	return func(req Request) (interface{}, error) {
		start := time.Now()
		ctx, span := f.tracer.StartRemote(context.Background(), req.Trace.Link(), "fed.dispatch")
		if span != nil {
			span.SetAttr(otrace.String("peer", f.self.ID), otrace.String("rpc", req.Type))
		}
		payload, err := f.dispatch(ctx, req)
		span.SetError(err)
		span.End()
		if f.obs != nil {
			f.obs.observeRPC(req.Type, err, time.Since(start))
		}
		return payload, err
	}
}

func (f *FedGateway) dispatch(ctx context.Context, req Request) (interface{}, error) {
	switch req.Type {
	case MsgRegister:
		var reg RegisterReq
		if err := json.Unmarshal(req.Payload, &reg); err != nil {
			return nil, fmt.Errorf("malformed register payload")
		}
		return nil, f.register(ctx, reg)
	case MsgDiscover:
		var d DiscoverReq
		if req.Payload != nil {
			if err := json.Unmarshal(req.Payload, &d); err != nil {
				return nil, fmt.Errorf("malformed discover payload")
			}
		}
		if d.Local {
			return DiscoverResp{Resources: f.localResources()}, nil
		}
		return DiscoverResp{Resources: f.globalResources(ctx)}, nil
	case MsgFedQueryTR:
		var r FedQueryTRReq
		if err := json.Unmarshal(req.Payload, &r); err != nil {
			return nil, fmt.Errorf("malformed fed query payload")
		}
		return f.FedQueryTR(ctx, r)
	case MsgFedSubmit:
		var r FedSubmitReq
		if err := json.Unmarshal(req.Payload, &r); err != nil {
			return nil, fmt.Errorf("malformed fed submit payload")
		}
		return f.FedSubmit(ctx, r)
	case MsgFedJobStatus:
		var r FedJobReq
		if err := json.Unmarshal(req.Payload, &r); err != nil {
			return nil, fmt.Errorf("malformed fed status payload")
		}
		return f.FedJobStatus(ctx, r)
	case MsgFedKill:
		var r FedJobReq
		if err := json.Unmarshal(req.Payload, &r); err != nil {
			return nil, fmt.Errorf("malformed fed kill payload")
		}
		return f.FedKill(ctx, r)
	case MsgFedRank:
		var r FedRankReq
		if req.Payload != nil {
			if err := json.Unmarshal(req.Payload, &r); err != nil {
				return nil, fmt.Errorf("malformed fed rank payload")
			}
		}
		return f.FedRank(ctx, r)
	case MsgFedSync:
		var r FedSyncReq
		if err := json.Unmarshal(req.Payload, &r); err != nil {
			return nil, fmt.Errorf("malformed fed sync payload")
		}
		return f.fedSync(r), nil
	case MsgQueryStats:
		resp := QueryStatsResp{MachineID: f.self.ID, Ring: f.RingStats()}
		if f.obs != nil {
			resp.Requests, resp.Errors = f.obs.requestCounts()
			resp.Wire = f.obs.wireStats()
			resp.SLO = f.obs.SLOStatuses()
		}
		return resp, nil
	case MsgQueryObs:
		var r QueryObsReq
		if req.Payload != nil {
			if err := json.Unmarshal(req.Payload, &r); err != nil {
				return nil, fmt.Errorf("malformed obs payload")
			}
		}
		if r.Local {
			return QueryObsResp{Peer: f.self.ID, Snapshot: f.obs.ExportObs(f.self.ID)}, nil
		}
		v := f.FleetObs(ctx).View(r.MaxAlerts)
		return QueryObsResp{Peer: f.self.ID, Fleet: &v}, nil
	case MsgQueryTraces:
		var r QueryTracesReq
		if req.Payload != nil {
			if err := json.Unmarshal(req.Payload, &r); err != nil {
				return nil, fmt.Errorf("malformed traces payload")
			}
		}
		return f.queryTraces(r)
	default:
		return nil, fmt.Errorf("fed: unknown request type %q", req.Type)
	}
}

// queryTraces serves the peer's flight recorder (empty when tracing is
// off, mirroring the host gateway's behavior).
func (f *FedGateway) queryTraces(req QueryTracesReq) (QueryTracesResp, error) {
	if req.Previous {
		return prevFlightResp(f.self.ID, f.obs.PrevFlight(), req)
	}
	rec := f.tracer.Recorder()
	resp := QueryTracesResp{MachineID: f.self.ID, TotalRecorded: rec.Total()}
	if req.TraceID != "" {
		id, err := otrace.ParseTraceID(req.TraceID)
		if err != nil {
			return QueryTracesResp{}, fmt.Errorf("bad trace id %q", req.TraceID)
		}
		records, ok := rec.Trace(id)
		if !ok {
			return QueryTracesResp{}, fmt.Errorf("trace %s not retained", req.TraceID)
		}
		resp.Traces = records
	} else {
		resp.Traces = rec.Traces(req.Limit)
	}
	if req.Events {
		resp.Events = rec.Events(req.Limit)
	}
	return resp, nil
}

// Serve starts a protocol server for the peer on addr, with the peer's
// serving-path metrics installed when observability is attached.
func (f *FedGateway) Serve(addr string) (*Server, error) {
	return f.ServeConfig(addr, ServerConfig{})
}

// ServeConfig is Serve with explicit admission-control and deadline bounds.
func (f *FedGateway) ServeConfig(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = f.obs.serverMetrics()
	}
	return NewServerConfig(addr, f.Handler(), cfg)
}
