package ishare

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the number of virtual nodes each peer projects onto the
// consistent-hash ring when the caller does not choose. 64 keeps the
// per-peer load within a few percent of fair share for realistic fleet
// sizes while the ring stays small enough to rebuild instantly.
const DefaultVnodes = 64

// DefaultReplicas is the number of successor gateways each registry entry
// is replicated to beyond its owner (K = 2: an entry survives two
// simultaneous gateway losses).
const DefaultReplicas = 2

// Peer identifies one federation gateway: a stable operator-chosen ID (the
// hash input, so it must not change across restarts) and the TCP address
// the peer serves the iShare protocol on.
type Peer struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the peer it belongs to.
type ringPoint struct {
	hash uint64
	id   string
}

// Ring is a consistent-hash ring mapping machine names to federation
// gateways. Each peer is projected onto the circle at Vnodes pseudo-random
// points — one per equal-width stratum of the circle, which spreads a
// peer's points far more evenly than fully random placement — and a key is
// owned by the peer of the point NEAREST to the key's hash (either
// direction). Both choices cut load variance roughly in half versus the
// textbook successor-of-random-points rule, which is what lets 64 vnodes
// keep every peer within ±15% of fair share on the tested fleet shapes;
// raise Vnodes for tighter balance on large fleets.
//
// The consistent-hashing contract still holds exactly: a joining peer can
// only insert points, so a key's nearest point either stays put or becomes
// the joiner's (keys move only TO the joiner); a leaving peer only removes
// points, so only the keys it owned change hands.
//
// Ring is not safe for concurrent mutation; build it up front (federation
// membership is static per process) or guard it externally.
type Ring struct {
	vnodes int
	peers  map[string]Peer
	points []ringPoint // sorted by (hash, id)
}

// NewRing returns an empty ring with the given virtual-node count per peer
// (<= 0 uses DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, peers: make(map[string]Peer)}
}

// Vnodes returns the virtual-node count per peer.
func (r *Ring) Vnodes() int { return r.vnodes }

// Len returns the number of peers on the ring.
func (r *Ring) Len() int { return len(r.peers) }

// Add places a peer on the ring (or refreshes its address if the ID is
// already present — the hash points depend only on the ID, so an address
// change moves no keys).
func (r *Ring) Add(p Peer) error {
	if p.ID == "" || p.Addr == "" {
		return fmt.Errorf("ishare: ring peer needs id and address")
	}
	if _, ok := r.peers[p.ID]; ok {
		r.peers[p.ID] = p
		return nil
	}
	r.peers[p.ID] = p
	stride := ^uint64(0)/uint64(r.vnodes) + 1
	if stride == 0 { // vnodes == 1: a single stratum spanning the circle
		stride = ^uint64(0)
	}
	for i := 0; i < r.vnodes; i++ {
		jitter := ringHash(fmt.Sprintf("%s#%d", p.ID, i)) % stride
		r.points = append(r.points, ringPoint{hash: uint64(i)*stride + jitter, id: p.ID})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return nil
}

// Remove takes a peer off the ring; its arcs fall to the clockwise
// successors. Removing an unknown ID is a no-op.
func (r *Ring) Remove(id string) {
	if _, ok := r.peers[id]; !ok {
		return
	}
	delete(r.peers, id)
	kept := r.points[:0]
	for _, pt := range r.points {
		if pt.id != id {
			kept = append(kept, pt)
		}
	}
	r.points = kept
}

// Peers lists the ring members sorted by ID.
func (r *Ring) Peers() []Peer {
	out := make([]Peer, 0, len(r.peers))
	for _, p := range r.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Owner returns the peer owning the key (false on an empty ring).
func (r *Ring) Owner(key string) (Peer, bool) {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return Peer{}, false
	}
	return s[0], true
}

// Successors returns up to n distinct peers for the key, ordered by the
// circular distance of their nearest point to the key's hash (owner first).
// This is the replica set — and the failover order — for the key: a
// request for the key's machine is routed to these peers in this order.
func (r *Ring) Successors(key string, n int) []Peer {
	m := len(r.points)
	if m == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := ringHash(key)
	idx := sort.Search(m, func(i int) bool { return r.points[i].hash >= h }) % m
	// Walk outward from the key in both directions, always consuming the
	// closer of the next clockwise and next counter-clockwise point.
	// Distances use mod-2^64 arithmetic, so wraparound is free.
	si, pi := idx, (idx-1+m)%m
	out := make([]Peer, 0, n)
	for steps := 0; steps < m && len(out) < n; steps++ {
		sp, pp := r.points[si], r.points[pi]
		var pick ringPoint
		if h-pp.hash < sp.hash-h {
			pick = pp
			pi = (pi - 1 + m) % m
		} else {
			pick = sp
			si = (si + 1) % m
		}
		// Dedup against the result so far: n is the replica fanout (a few
		// entries), so a linear scan beats the map this used to allocate
		// per call — Successors runs per routed request and per entry per
		// anti-entropy round, where the map was the top allocation site.
		dup := false
		for i := range out {
			if out[i].ID == pick.id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, r.peers[pick.id])
	}
	return out
}

// ringHash maps a string onto the hash circle: FNV-1a 64 followed by a
// SplitMix64 finalizer. FNV alone clusters short suffix-numbered names
// (peer vnode labels, machine names); the finalizer's avalanche spreads
// them, which is what the ±15% balance guarantee rests on.
func ringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
