package ishare

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fgcs/internal/simclock"
)

// ErrCircuitOpen is reported for machines the breaker currently quarantines.
var ErrCircuitOpen = errors.New("ishare: circuit open")

// BreakerState is one of the classic three circuit-breaker states.
type BreakerState int

const (
	// BreakerClosed: traffic flows; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the machine is quarantined until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is allowed through; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig tunes the per-machine circuit breakers.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker (default 3).
	Threshold int
	// Cooldown is how long an open breaker quarantines the machine before
	// allowing a half-open probe (default 30 s).
	Cooldown time.Duration
}

func (c BreakerConfig) threshold() int {
	if c.Threshold <= 0 {
		return 3
	}
	return c.Threshold
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return 30 * time.Second
	}
	return c.Cooldown
}

type breaker struct {
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	// Cumulative outcome taxonomy: faults counts reported errors that fed
	// the state machine; sheds counts typed overloaded rejections, which
	// never do — a saturated-but-healthy machine must not be quarantined
	// like a dead one.
	faults uint64
	sheds  uint64
}

// BreakerSet holds one circuit breaker per machine. A scheduler consults it
// before querying a machine and reports every outcome back, so machines that
// keep failing are quarantined instead of slowing every Rank with doomed
// RPCs — the control-plane analogue of the paper's resource-failure
// awareness.
type BreakerSet struct {
	// OnTransition, when non-nil, is invoked for every breaker state
	// change with the machine and the edge taken. It is called with the
	// set's lock held, so it must be fast and must not call back into the
	// BreakerSet — increment a counter, don't do I/O. Set it before the
	// set is shared across goroutines.
	OnTransition func(machineID string, from, to BreakerState)

	mu    sync.Mutex
	cfg   BreakerConfig
	clock simclock.Clock
	m     map[string]*breaker
}

// NewBreakerSet builds a breaker set on the given clock (nil = wall clock).
func NewBreakerSet(cfg BreakerConfig, clock simclock.Clock) *BreakerSet {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &BreakerSet{cfg: cfg, clock: clock, m: make(map[string]*breaker)}
}

// transition moves a breaker to a new state, firing OnTransition on a real
// edge. Callers hold bs.mu.
func (bs *BreakerSet) transition(id string, b *breaker, to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if bs.OnTransition != nil {
		bs.OnTransition(id, from, to)
	}
}

func (bs *BreakerSet) get(id string) *breaker {
	b, ok := bs.m[id]
	if !ok {
		b = &breaker{}
		bs.m[id] = b
	}
	return b
}

// Allow reports whether a request to the machine may proceed. While open it
// returns false until the cooldown elapses, at which point exactly one
// caller is admitted as the half-open probe.
func (bs *BreakerSet) Allow(id string) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(id)
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if bs.clock.Now().Sub(b.openedAt) >= bs.cfg.cooldown() {
			bs.transition(id, b, BreakerHalfOpen)
			b.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		if b.probing {
			return false // a probe is already in flight
		}
		b.probing = true
		return true
	}
	return true
}

// Report records the outcome of an admitted request. A nil err closes the
// breaker; an error while half-open re-opens it immediately, an error while
// closed opens it once Threshold consecutive failures accumulate. A typed
// overloaded shed is counted but does not move the state machine: the
// machine answered, it is saturated rather than broken, and the retry
// layer's backoff — not a quarantine — is the right response.
func (bs *BreakerSet) Report(id string, err error) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(id)
	if err == nil {
		bs.transition(id, b, BreakerClosed)
		b.failures = 0
		b.probing = false
		return
	}
	if IsOverloaded(err) {
		b.sheds++
		// A shed probe is inconclusive; allow another one.
		b.probing = false
		return
	}
	b.faults++
	switch b.state {
	case BreakerHalfOpen:
		bs.transition(id, b, BreakerOpen)
		b.openedAt = bs.clock.Now()
		b.probing = false
	default:
		b.failures++
		if b.failures >= bs.cfg.threshold() {
			bs.transition(id, b, BreakerOpen)
			b.openedAt = bs.clock.Now()
			b.failures = 0
		}
	}
}

// Counts returns the machine's cumulative reported-outcome taxonomy:
// faults (transport and application errors that fed the state machine) and
// sheds (typed overloaded rejections, which never do).
func (bs *BreakerSet) Counts(id string) (faults, sheds uint64) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b, ok := bs.m[id]
	if !ok {
		return 0, 0
	}
	return b.faults, b.sheds
}

// State returns the machine's current breaker state (Closed for unknown
// machines). An open breaker past its cooldown reads as half-open.
func (bs *BreakerSet) State(id string) BreakerState {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b, ok := bs.m[id]
	if !ok {
		return BreakerClosed
	}
	if b.state == BreakerOpen && bs.clock.Now().Sub(b.openedAt) >= bs.cfg.cooldown() {
		return BreakerHalfOpen
	}
	return b.state
}
