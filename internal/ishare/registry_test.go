package ishare

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fgcs/internal/simclock"
)

func TestRegistryTTLExpiry(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	reg := NewRegistryClock(clock)
	if err := reg.RegisterTTL(Resource{MachineID: "a", Addr: "10.0.0.1:1"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Resource{MachineID: "forever", Addr: "10.0.0.2:1"}); err != nil {
		t.Fatal(err)
	}
	if got := len(reg.Resources()); got != 2 {
		t.Fatalf("live resources = %d", got)
	}
	// Just before expiry: still live.
	clock.Advance(time.Minute - time.Second)
	if got := len(reg.Resources()); got != 2 {
		t.Fatalf("resources before expiry = %d", got)
	}
	// At expiry, the TTL'd entry vanishes from discovery; the TTL-less
	// registration stays forever.
	clock.Advance(time.Second)
	res := reg.Resources()
	if len(res) != 1 || res[0].MachineID != "forever" {
		t.Fatalf("resources after expiry = %+v", res)
	}
	// Discovery filtered lazily; Reap actually evicts the map entry.
	if n := reg.Reap(); n != 1 {
		t.Fatalf("reaped = %d, want 1", n)
	}
	if n := reg.Reap(); n != 0 {
		t.Fatalf("second reap = %d, want 0", n)
	}
}

func TestRegistryReRegisterRefreshesTTL(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	reg := NewRegistryClock(clock)
	if err := reg.RegisterTTL(Resource{MachineID: "a", Addr: "10.0.0.1:1"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	// Heartbeat at t+40s pushes expiry to t+100s.
	clock.Advance(40 * time.Second)
	if err := reg.RegisterTTL(Resource{MachineID: "a", Addr: "10.0.0.1:1"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	clock.Advance(50 * time.Second) // t+90s: past the original expiry
	if got := len(reg.Resources()); got != 1 {
		t.Fatal("refreshed registration expired on the original TTL")
	}
	clock.Advance(10 * time.Second) // t+100s
	if got := len(reg.Resources()); got != 0 {
		t.Fatalf("resources after refreshed TTL = %d", got)
	}
}

func TestRegistryTTLOverTCP(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	reg := NewRegistryClock(clock)
	srv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := RegisterWithTTL(context.Background(), nil, srv.Addr(), "lab-01", "10.0.0.1:9000", 30*time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := Discover(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("discovered = %+v", res)
	}
	clock.Advance(31 * time.Second)
	res, err = Discover(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("expired gateway still discoverable: %+v", res)
	}
}

func TestRegistryReaper(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	reg := NewRegistryClock(clock)
	_ = reg.RegisterTTL(Resource{MachineID: "a", Addr: "10.0.0.1:1"}, 10*time.Second)
	stop := reg.StartReaper(5 * time.Second)
	defer stop()
	// Let the reaper goroutine arm its timer before advancing.
	waitFor(t, func() bool { return clock.PendingTimers() > 0 })
	clock.Advance(5 * time.Second) // first tick: nothing expired yet
	waitFor(t, func() bool { return clock.PendingTimers() > 0 })
	clock.Advance(10 * time.Second) // second tick at t+15: entry expired
	waitFor(t, func() bool {
		reg.mu.Lock()
		defer reg.mu.Unlock()
		return len(reg.resources) == 0
	})
	stop()
	stop() // idempotent
}

// waitFor polls cond with a real-time deadline; used to sync with
// goroutines driven by the virtual clock.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestHostNodeHeartbeat(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	reg := NewRegistryClock(clock)
	regSrv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer regSrv.Close()

	node := testNode(t, clock, nil)
	gwSrv, err := node.Gateway.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gwSrv.Close()

	ttl, every := 30*time.Second, 10*time.Second
	if err := RegisterWithTTL(context.Background(), nil, regSrv.Addr(), "lab-01", gwSrv.Addr(), ttl, time.Second); err != nil {
		t.Fatal(err)
	}
	stop := node.StartHeartbeat(nil, regSrv.Addr(), gwSrv.Addr(), ttl, every, time.Second)
	// Beats at 10/20/30/40s keep the registration alive far past the
	// original 30 s TTL.
	for i := 0; i < 4; i++ {
		waitFor(t, func() bool { return clock.PendingTimers() > 0 })
		clock.Advance(every)
		// Each beat is an RPC on a goroutine; wait until the refreshed
		// expiry lands so the next advance cannot race past it.
		deadline := clock.Now().Add(ttl)
		waitFor(t, func() bool {
			reg.mu.Lock()
			defer reg.mu.Unlock()
			r, ok := reg.resources["lab-01"]
			return ok && !r.expires.Before(deadline)
		})
	}
	if got := len(reg.Resources()); got != 1 {
		t.Fatalf("heartbeating gateway dropped: resources = %d", got)
	}
	// Stop the heartbeat: the registration expires one TTL later — this is
	// exactly how a revoked host vanishes from discovery.
	stop()
	clock.Advance(ttl + time.Second)
	if got := len(reg.Resources()); got != 0 {
		t.Fatalf("dead gateway still discoverable after TTL: resources = %d", got)
	}
}

// TestRegistryConcurrentAccess hammers register/discover/reap from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestRegistryConcurrentAccess(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	reg := NewRegistryClock(clock)
	h := reg.Handler()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					_ = reg.RegisterTTL(Resource{
						MachineID: fmt.Sprintf("m-%d-%d", w, i%16),
						Addr:      "10.0.0.1:1",
					}, time.Duration(1+i%30)*time.Second)
				case 1:
					_, _ = h(Request{Type: MsgDiscover})
				case 2:
					reg.Reap()
				case 3:
					reg.Unregister(fmt.Sprintf("m-%d-%d", w, (i+1)%16))
				}
			}
		}(w)
	}
	// Concurrent clock advances move expiry judgments while the above run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			clock.Advance(time.Second)
		}
	}()
	wg.Wait()
}
