package ishare

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fgcs/internal/monitor"
	"fgcs/internal/obs"
	"fgcs/internal/otrace"
	"fgcs/internal/predict"
)

// ServerMetrics counts a server's wire-protocol and admission-control
// activity: connections per negotiated protocol and requests shed per
// reason. A nil *ServerMetrics records nothing, so bare NewServer callers
// pay only a nil check. The raw counts are kept as atomics alongside the
// registry counters so QueryStats can snapshot them without a registry
// scrape.
type ServerMetrics struct {
	binaryConns uint64
	jsonConns   uint64
	shedAccept  uint64
	shedInfl    uint64
	shedPC      uint64

	cBinary     *obs.Counter
	cJSON       *obs.Counter
	cShedAccept *obs.Counter
	cShedInfl   *obs.Counter
	cShedPC     *obs.Counter
}

// NewServerMetrics registers the serving-path counter families on r.
func NewServerMetrics(r *obs.Registry) *ServerMetrics {
	return &ServerMetrics{
		cBinary:     r.Counter("fgcs_server_conns_total", "Connections accepted, by negotiated protocol.", obs.Label{Key: "proto", Value: "binary"}),
		cJSON:       r.Counter("fgcs_server_conns_total", "Connections accepted, by negotiated protocol.", obs.Label{Key: "proto", Value: "json"}),
		cShedAccept: r.Counter("fgcs_server_shed_total", "Requests or connections shed by admission control, by reason.", obs.Label{Key: "reason", Value: "accept-queue"}),
		cShedInfl:   r.Counter("fgcs_server_shed_total", "Requests or connections shed by admission control, by reason.", obs.Label{Key: "reason", Value: "inflight"}),
		cShedPC:     r.Counter("fgcs_server_shed_total", "Requests or connections shed by admission control, by reason.", obs.Label{Key: "reason", Value: "per-conn"}),
	}
}

func (m *ServerMetrics) connOpened(binary bool) {
	if m == nil {
		return
	}
	if binary {
		atomic.AddUint64(&m.binaryConns, 1)
		m.cBinary.Inc()
		return
	}
	atomic.AddUint64(&m.jsonConns, 1)
	m.cJSON.Inc()
}

func (m *ServerMetrics) shedAcceptQueue() {
	if m == nil {
		return
	}
	atomic.AddUint64(&m.shedAccept, 1)
	m.cShedAccept.Inc()
}

func (m *ServerMetrics) shedInflight() {
	if m == nil {
		return
	}
	atomic.AddUint64(&m.shedInfl, 1)
	m.cShedInfl.Inc()
}

func (m *ServerMetrics) shedPerConn() {
	if m == nil {
		return
	}
	atomic.AddUint64(&m.shedPC, 1)
	m.cShedPC.Inc()
}

// Snapshot returns the wire-stats view of the counters, stamped with the
// binary protocol version this build speaks.
func (m *ServerMetrics) Snapshot() WireStats {
	if m == nil {
		return WireStats{ProtoVersion: FrameVersion}
	}
	return WireStats{
		ProtoVersion:    FrameVersion,
		BinaryConns:     atomic.LoadUint64(&m.binaryConns),
		JSONConns:       atomic.LoadUint64(&m.jsonConns),
		ShedAcceptQueue: atomic.LoadUint64(&m.shedAccept),
		ShedInflight:    atomic.LoadUint64(&m.shedInfl),
		ShedPerConn:     atomic.LoadUint64(&m.shedPC),
	}
}

// gatewayRPCTypes are the request types a gateway serves — host-node RPCs
// plus the federation verbs a peer gateway dispatches; their counters and
// latency histograms are registered up front so the serving path never
// formats a metric name.
var gatewayRPCTypes = []string{
	MsgQueryTR, MsgSubmit, MsgJobStatus, MsgKillJob, MsgQueryStats, MsgQueryTraces,
	MsgQueryObs, MsgRegister, MsgDiscover,
	MsgFedQueryTR, MsgFedSubmit, MsgFedJobStatus, MsgFedKill, MsgFedRank, MsgFedSync,
}

// NodeObs bundles one host node's observability: the metrics registry every
// component records into, and the online accuracy tracker that scores issued
// TR predictions against observed availability outcomes. A nil *NodeObs is
// inert (every method no-ops), so lightweight simulations can opt out.
type NodeObs struct {
	Registry *obs.Registry
	Tracker  *obs.Tracker
	// Engine and Monitor are the pre-registered metric families handed to
	// the prediction engine and the resource monitor.
	Engine  *predict.EngineMetrics
	Monitor *monitor.Metrics
	// Caller instruments the node's outbound RPCs (registry heartbeats).
	Caller *CallerMetrics
	// Server instruments the node's serving path: connection protocol mix
	// and admission-control sheds.
	Server *ServerMetrics
	// Tracer mints request traces for the node's served RPCs. nil (the
	// default) disables tracing entirely — the serving path then pays two
	// pointer reads and nothing else. Install one with SetTracing.
	Tracer *otrace.Tracer
	// Alerts is the node's bounded alert ring: accuracy-drift,
	// calibration-skew, and serving-path ops alerts land here and are served
	// over /alerts and query-obs. Drift is the watcher feeding it; retune
	// with SetDriftConfig.
	Alerts *obs.AlertRing
	Drift  *obs.DriftWatcher
	// RouterDecisions and RouterSwitches count the ensemble router's routing
	// decisions and predictor switches; they idle at zero on nodes running
	// without the ensemble. Wire them with Router.SetMetrics.
	RouterDecisions *obs.Counter
	RouterSwitches  *obs.Counter

	sloMu sync.Mutex
	slos  []*obs.SLOMonitor

	// ops-alert cursors, advanced only by StepObs (single caller).
	opsPrevShed  uint64
	opsPrevReqs  uint64
	opsPrevOpens uint64

	requests   map[string]*obs.Counter
	errors     map[string]*obs.Counter
	rpcSeconds map[string]*obs.Histogram
	reqOther   *obs.Counter
	errOther   *obs.Counter
	rpcOther   *obs.Histogram

	// prevFlight is the flight snapshot the previous process saved on
	// shutdown (nil = none found). Installed once at boot, before serving.
	prevFlight *otrace.FlightSnapshot
}

// NewNodeObs registers a host node's full metric surface on a fresh
// registry.
func NewNodeObs() *NodeObs {
	r := obs.NewRegistry()
	o := &NodeObs{
		Registry:   r,
		Tracker:    obs.NewTracker(),
		Engine:     predict.NewEngineMetrics(r),
		Monitor:    monitor.NewMetrics(r),
		requests:   make(map[string]*obs.Counter, len(gatewayRPCTypes)),
		errors:     make(map[string]*obs.Counter, len(gatewayRPCTypes)),
		rpcSeconds: make(map[string]*obs.Histogram, len(gatewayRPCTypes)),
	}
	o.Caller = &CallerMetrics{
		Attempts:        r.Counter("fgcs_client_rpc_attempts_total", "Outbound RPC attempts (first tries and retries)."),
		Retries:         r.Counter("fgcs_client_rpc_retries_total", "Outbound RPC attempts beyond the first."),
		TransportErrors: r.Counter("fgcs_client_rpc_transport_errors_total", "Outbound RPC attempts that failed below the application."),
		Overloaded:      r.Counter("fgcs_client_rpc_overloaded_total", "Outbound RPC attempts shed by the server's admission control."),
	}
	o.Server = NewServerMetrics(r)
	o.RouterDecisions = r.Counter("fgcs_router_decisions_total", "Ensemble routing decisions made for TR queries.")
	o.RouterSwitches = r.Counter("fgcs_router_switches_total", "Ensemble routing switches to a different predictor.")
	o.Alerts = obs.NewAlertRing(0)
	o.Drift = obs.NewDriftWatcher(o.Tracker, o.Alerts, obs.DriftConfig{})
	for _, typ := range gatewayRPCTypes {
		l := obs.Label{Key: "type", Value: typ}
		o.requests[typ] = r.Counter("fgcs_gateway_requests_total", "Gateway RPCs served, by request type.", l)
		o.errors[typ] = r.Counter("fgcs_gateway_errors_total", "Gateway RPCs that returned an application error, by request type.", l)
		o.rpcSeconds[typ] = r.Histogram("fgcs_gateway_rpc_seconds", "Gateway RPC handling latency, by request type.", nil, l)
	}
	l := obs.Label{Key: "type", Value: "other"}
	o.reqOther = r.Counter("fgcs_gateway_requests_total", "Gateway RPCs served, by request type.", l)
	o.errOther = r.Counter("fgcs_gateway_errors_total", "Gateway RPCs that returned an application error, by request type.", l)
	o.rpcOther = r.Histogram("fgcs_gateway_rpc_seconds", "Gateway RPC handling latency, by request type.", nil, l)
	return o
}

// SetTracing installs the node's tracer (and through it the flight
// recorder). Call before the gateway starts serving; pass nil to disable.
func (o *NodeObs) SetTracing(t *otrace.Tracer) {
	if o == nil {
		return
	}
	o.Tracer = t
}

// TracerOrNil is the nil-safe tracer accessor the serving path uses.
func (o *NodeObs) TracerOrNil() *otrace.Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Flight returns the node's flight recorder (nil when tracing is off; all
// Recorder methods are nil-safe).
func (o *NodeObs) Flight() *otrace.Recorder {
	if o == nil {
		return nil
	}
	return o.Tracer.Recorder()
}

// SetPrevFlight installs the flight snapshot the previous process saved on
// shutdown, served by QueryTraces with Previous set. Call at boot, before
// serving.
func (o *NodeObs) SetPrevFlight(s *otrace.FlightSnapshot) {
	if o == nil {
		return
	}
	o.prevFlight = s
}

// PrevFlight returns the previous process's saved flight snapshot (nil if
// none was loaded).
func (o *NodeObs) PrevFlight() *otrace.FlightSnapshot {
	if o == nil {
		return nil
	}
	return o.prevFlight
}

// prevFlightResp serves a QueryTraces request against a persisted flight
// snapshot — the shared Previous path of the host gateway and the
// federation peer.
func prevFlightResp(machineID string, snap *otrace.FlightSnapshot, req QueryTracesReq) (QueryTracesResp, error) {
	if snap == nil {
		return QueryTracesResp{}, fmt.Errorf("no previous flight snapshot (node not started with -data-dir, or first run)")
	}
	resp := QueryTracesResp{MachineID: machineID, TotalRecorded: snap.Total}
	if req.TraceID != "" {
		id, err := otrace.ParseTraceID(req.TraceID)
		if err != nil {
			return QueryTracesResp{}, fmt.Errorf("bad trace id %q", req.TraceID)
		}
		records, ok := snap.Trace(id)
		if !ok {
			return QueryTracesResp{}, fmt.Errorf("trace %s not in the previous flight", req.TraceID)
		}
		resp.Traces = records
	} else {
		resp.Traces = snap.TracesLimit(req.Limit)
	}
	if req.Events {
		resp.Events = snap.EventsLimit(req.Limit)
	}
	return resp, nil
}

// InstrumentBreakers registers per-edge transition counters and an
// open-breaker gauge on r and installs them as the set's OnTransition hook.
// Call before the set is shared across goroutines.
func InstrumentBreakers(bs *BreakerSet, r *obs.Registry) {
	transitions := map[BreakerState]*obs.Counter{
		BreakerClosed:   r.Counter("fgcs_breaker_transitions_total", "Circuit breaker state changes, by target state.", obs.Label{Key: "to", Value: "closed"}),
		BreakerOpen:     r.Counter("fgcs_breaker_transitions_total", "Circuit breaker state changes, by target state.", obs.Label{Key: "to", Value: "open"}),
		BreakerHalfOpen: r.Counter("fgcs_breaker_transitions_total", "Circuit breaker state changes, by target state.", obs.Label{Key: "to", Value: "half-open"}),
	}
	open := r.Gauge("fgcs_breaker_open", "Machines currently quarantined by an open breaker.")
	var openCount int64
	bs.OnTransition = func(_ string, from, to BreakerState) {
		transitions[to].Inc()
		if to == BreakerOpen {
			openCount++
		} else if from == BreakerOpen {
			openCount--
		}
		open.Set(float64(openCount))
	}
}

// observeRPC records one served gateway request.
func (o *NodeObs) observeRPC(typ string, err error, dur time.Duration) {
	if o == nil {
		return
	}
	req, ok := o.requests[typ]
	if !ok {
		o.reqOther.Inc()
		if err != nil {
			o.errOther.Inc()
		}
		o.rpcOther.Observe(dur.Seconds())
		return
	}
	req.Inc()
	if err != nil {
		o.errors[typ].Inc()
	}
	o.rpcSeconds[typ].Observe(dur.Seconds())
}

// serverMetrics is the nil-safe accessor the serve paths use.
func (o *NodeObs) serverMetrics() *ServerMetrics {
	if o == nil {
		return nil
	}
	return o.Server
}

// wireStats snapshots the serving-path counters for QueryStats (nil when
// observability is off, so the field stays absent on the wire).
func (o *NodeObs) wireStats() *WireStats {
	if o == nil || o.Server == nil {
		return nil
	}
	w := o.Server.Snapshot()
	return &w
}

// requestCounts snapshots the per-type served/error counters (only types
// with at least one request appear).
func (o *NodeObs) requestCounts() (reqs, errs map[string]uint64) {
	if o == nil {
		return nil, nil
	}
	reqs = make(map[string]uint64)
	errs = make(map[string]uint64)
	for typ, c := range o.requests {
		if v := c.Value(); v > 0 {
			reqs[typ] = v
		}
		if v := o.errors[typ].Value(); v > 0 {
			errs[typ] = v
		}
	}
	if v := o.reqOther.Value(); v > 0 {
		reqs["other"] = v
	}
	if v := o.errOther.Value(); v > 0 {
		errs["other"] = v
	}
	return reqs, errs
}
