package ishare

import (
	"context"
	"encoding/json"
	"testing/quick"

	"fgcs/internal/rng"
	"net"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/simclock"
)

func TestRegistryOverTCP(t *testing.T) {
	reg := NewRegistry()
	srv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := RegisterWith(srv.Addr(), "lab-01", "10.0.0.1:9000", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := RegisterWith(srv.Addr(), "lab-02", "10.0.0.2:9000", time.Second); err != nil {
		t.Fatal(err)
	}
	resources, err := Discover(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resources) != 2 || resources[0].MachineID != "lab-01" || resources[1].MachineID != "lab-02" {
		t.Fatalf("resources = %+v", resources)
	}
	// Re-registration refreshes, not duplicates.
	if err := RegisterWith(srv.Addr(), "lab-01", "10.0.0.1:9999", time.Second); err != nil {
		t.Fatal(err)
	}
	resources, _ = Discover(srv.Addr(), time.Second)
	if len(resources) != 2 || resources[0].Addr != "10.0.0.1:9999" {
		t.Fatalf("after refresh: %+v", resources)
	}
	reg.Unregister("lab-01")
	resources, _ = Discover(srv.Addr(), time.Second)
	if len(resources) != 1 {
		t.Fatalf("after unregister: %+v", resources)
	}
}

func TestRegistryRejectsBadRequests(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(Resource{}); err == nil {
		t.Fatal("empty resource accepted")
	}
	h := reg.Handler()
	if _, err := h(Request{Type: "bogus"}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := h(Request{Type: MsgRegister, Payload: json.RawMessage(`{`)}); err == nil {
		t.Fatal("malformed payload accepted")
	}
}

func TestGatewayOverTCPEndToEnd(t *testing.T) {
	now := time.Date(2005, 9, 2, 8, 30, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	node, err := NewHostNode(NodeConfig{
		MachineID: "lab-01",
		Cfg:       avail.DefaultConfig(),
		Period:    period,
		Clock:     clock,
		Preloaded: historyMachine("lab-01", 11, -1),
	}, staticSource{})
	if err != nil {
		t.Fatal(err)
	}
	node.Gateway.Record(now, sample(5, 400))

	reg := NewRegistry()
	regSrv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer regSrv.Close()
	gwSrv, err := node.Serve("127.0.0.1:0", regSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer gwSrv.Close()

	sched, err := FromRegistry(context.Background(), regSrv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Candidates) != 1 {
		t.Fatalf("candidates = %+v", sched.Candidates)
	}
	job := SubmitReq{Name: "remote-job", WorkSeconds: 120, MemMB: 80}
	best, resp, err := sched.SubmitBest(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if best.TR != 1 {
		t.Fatalf("TR over TCP = %v", best.TR)
	}
	// Drive the node to completion and check status over TCP.
	feed(node.Gateway, now.Add(period), sample(5, 400), 25)
	api := RemoteGateway{Addr: gwSrv.Addr(), Timeout: time.Second}
	st, err := api.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "completed" {
		t.Fatalf("remote status = %+v", st)
	}
	// Remote kill of a finished job errors cleanly.
	if _, err := api.Kill(context.Background(), JobStatusReq{JobID: resp.JobID}); err == nil {
		t.Fatal("kill of finished job accepted")
	}
}

func TestServerRejectsMalformedStream(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(Request) (interface{}, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("malformed request got OK")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := NewServer("256.256.256.256:0", func(Request) (interface{}, error) { return nil, nil }); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestCallErrors(t *testing.T) {
	if err := Call("127.0.0.1:1", MsgDiscover, nil, nil, 50*time.Millisecond); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestGatewayHandlerBadPayloads(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	node := testNode(t, clock, nil)
	h := node.Gateway.Handler()
	for _, typ := range []string{MsgQueryTR, MsgSubmit, MsgJobStatus, MsgKillJob} {
		if _, err := h(Request{Type: typ, Payload: json.RawMessage(`{bad`)}); err == nil {
			t.Errorf("malformed %s payload accepted", typ)
		}
	}
	if _, err := h(Request{Type: "bogus"}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestHostNodeFeedDay(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	node := testNode(t, clock, nil)
	day := historyMachine("lab-01", 1, 9).Days[0]
	end := node.FeedDay(day)
	if want := monday.Add(24 * time.Hour); !end.Equal(want) {
		t.Fatalf("FeedDay ended at %v", end)
	}
	m := node.SM.recorder.Snapshot()
	if len(m.Days) != 1 {
		t.Fatalf("recorded days = %d", len(m.Days))
	}
	down := 0
	for _, s := range m.Days[0].Samples {
		if !s.Up {
			down++
		}
	}
	if down == 0 {
		t.Fatal("down samples not recorded")
	}
}

func TestHostNodeStartStop(t *testing.T) {
	clock := simclock.NewVirtual(monday)
	node := testNode(t, clock, nil)
	node.Start()
	deadline := time.Now().Add(2 * time.Second)
	for clock.PendingTimers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("monitor never armed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	clock.Advance(period)
	deadline = time.Now().Add(2 * time.Second)
	for node.Monitor.Samples() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no samples after advance")
		}
		time.Sleep(100 * time.Microsecond)
	}
	node.Stop()
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewHostNode(NodeConfig{}, staticSource{}); err == nil {
		t.Fatal("missing machine id accepted")
	}
	bad := NodeConfig{MachineID: "x", Cfg: avail.Config{Th1: 90, Th2: 10, SuspendLimit: time.Minute}}
	if _, err := NewHostNode(bad, staticSource{}); err == nil {
		t.Fatal("invalid avail config accepted")
	}
	// Mismatched preloaded period.
	pre := historyMachine("x", 1, -1) // 6 s period
	cfg := NodeConfig{MachineID: "x", Cfg: avail.DefaultConfig(), Period: time.Minute, Preloaded: pre}
	if _, err := NewHostNode(cfg, staticSource{}); err == nil {
		t.Fatal("mismatched preloaded period accepted")
	}
}

// Property: every protocol payload type survives a JSON round trip through
// the envelope encoding the wire uses.
func TestProtocolRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		reqs := []interface{}{
			QueryTRReq{LengthSeconds: r.Uniform(1, 1e5), GuestMemMB: r.Uniform(0, 512)},
			SubmitReq{Name: "job", WorkSeconds: r.Uniform(1, 1e5), MemMB: r.Uniform(0, 512), InitialProgressSeconds: r.Uniform(0, 10)},
			JobStatusReq{JobID: "j-1"},
			RegisterReq{MachineID: "m", Addr: "127.0.0.1:1"},
		}
		for _, payload := range reqs {
			raw, err := json.Marshal(payload)
			if err != nil {
				return false
			}
			var env Request
			b, err := json.Marshal(Request{Type: "t", Payload: raw})
			if err != nil {
				return false
			}
			if err := json.Unmarshal(b, &env); err != nil {
				return false
			}
			switch p := payload.(type) {
			case QueryTRReq:
				var got QueryTRReq
				if err := json.Unmarshal(env.Payload, &got); err != nil || got != p {
					return false
				}
			case SubmitReq:
				var got SubmitReq
				if err := json.Unmarshal(env.Payload, &got); err != nil || got != p {
					return false
				}
			case JobStatusReq:
				var got JobStatusReq
				if err := json.Unmarshal(env.Payload, &got); err != nil || got != p {
					return false
				}
			case RegisterReq:
				var got RegisterReq
				if err := json.Unmarshal(env.Payload, &got); err != nil || got != p {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
