package ishare

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fgcs/internal/obs"
)

// The observability plane: query-obs is the RPC that exports one node's
// mergeable metrics, accuracy sums, and recent alerts in the versioned
// binary codec (obs.PeerObs). A federation peer answering the non-local
// form fans the local form out over the ring — through the same
// Caller/retry/breaker stack every other federation verb uses — and merges
// the exports into one fleet-level snapshot: counters summed, histograms
// merged bucket-wise, per-predictor accuracy rolled up, every alert stamped
// with its peer. An unreachable peer's last good export is merged marked
// stale rather than silently dropped, so a fleet view during an outage says
// exactly how old each column is.

// QueryObsReq asks a node for its observability export. Local asks a
// federation peer for its own snapshot only (the fan-out form, and the only
// form a host gateway serves); otherwise a federation peer answers with the
// merged fleet view.
type QueryObsReq struct {
	Local bool `json:"local,omitempty"`
	// MaxAlerts caps the merged alert list on the fleet view (0 = all).
	MaxAlerts int `json:"max_alerts,omitempty"`
}

// QueryObsResp carries either one node's binary export (Snapshot, for the
// local form) or the merged fleet view (Fleet, for the federated form).
type QueryObsResp struct {
	Peer     string         `json:"peer"`
	Snapshot []byte         `json:"snapshot,omitempty"`
	Fleet    *obs.FleetView `json:"fleet,omitempty"`
}

// ExportPeer assembles this node's observability export under the given
// peer identity. Nil-safe: a nil NodeObs exports an empty snapshot.
func (o *NodeObs) ExportPeer(peer string) *obs.PeerObs {
	if o == nil {
		return obs.ExportPeerObs(peer, nil, nil, nil)
	}
	return obs.ExportPeerObs(peer, o.Registry, o.Tracker, o.Alerts)
}

// ExportObs is ExportPeer rendered in the versioned binary codec — the
// query-obs wire payload.
func (o *NodeObs) ExportObs(peer string) []byte {
	return o.ExportPeer(peer).EncodeBinary()
}

// SetDriftConfig rebuilds the node's accuracy-drift watcher with explicit
// tuning. Call before StepObs starts running.
func (o *NodeObs) SetDriftConfig(cfg obs.DriftConfig) {
	if o == nil {
		return
	}
	o.Drift = obs.NewDriftWatcher(o.Tracker, o.Alerts, cfg)
}

// AddSLO attaches a serving-path SLO monitor; StepObs feeds it cumulative
// samples and SLOStatuses (served in query-stats) evaluates it.
func (o *NodeObs) AddSLO(m *obs.SLOMonitor) {
	if o == nil || m == nil {
		return
	}
	o.sloMu.Lock()
	o.slos = append(o.slos, m)
	o.sloMu.Unlock()
}

// SLOStatuses evaluates every attached SLO monitor, in attachment order.
// Nil (not empty) when the node has no SLOs, so the query-stats field stays
// absent on the wire.
func (o *NodeObs) SLOStatuses() []obs.SLOStatus {
	if o == nil {
		return nil
	}
	o.sloMu.Lock()
	ms := append([]*obs.SLOMonitor(nil), o.slos...)
	o.sloMu.Unlock()
	if len(ms) == 0 {
		return nil
	}
	out := make([]obs.SLOStatus, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.Status())
	}
	return out
}

// RecordSLOSample feeds one cumulative serving-path sample — total gateway
// requests, errors, and the merged RPC latency histogram — to every
// attached monitor, stamped at now.
func (o *NodeObs) RecordSLOSample(now time.Time) {
	if o == nil {
		return
	}
	o.sloMu.Lock()
	ms := append([]*obs.SLOMonitor(nil), o.slos...)
	o.sloMu.Unlock()
	if len(ms) == 0 {
		return
	}
	s := obs.SLOSample{T: now}
	for _, c := range o.requests {
		s.Requests += c.Value()
	}
	s.Requests += o.reqOther.Value()
	for _, c := range o.errors {
		s.Errors += c.Value()
	}
	s.Errors += o.errOther.Value()
	s.Latency = o.mergedRPCLatency()
	for _, m := range ms {
		m.Record(s)
	}
}

// mergedRPCLatency merges the per-type gateway latency histograms into one
// serving-path histogram (they share the default bucket layout).
func (o *NodeObs) mergedRPCLatency() *obs.HistogramSnapshot {
	snap := o.Registry.Snapshot()
	var merged *obs.HistogramSnapshot
	for id, h := range snap.Histograms {
		if !strings.HasPrefix(id, "fgcs_gateway_rpc_seconds") {
			continue
		}
		if merged == nil {
			cp := h
			merged = &cp
			continue
		}
		if err := merged.Merge(h); err != nil {
			return nil
		}
	}
	return merged
}

// Ops-alert thresholds for StepObs: an admission-control shed rate above
// shedRateThreshold (given at least shedRateMinEvents serving attempts in
// the step) fires a shed-rate alert; breakerFlapOpens or more breaker opens
// in one step fire a breaker-flap alert.
const (
	shedRateThreshold = 0.10
	shedRateMinEvents = 20
	breakerFlapOpens  = 3
)

// StepObs advances the node's alerting once: records one cumulative SLO
// sample, steps the accuracy-drift watcher, and checks the serving-path ops
// signals (shed rate, breaker flapping). Call it from a single goroutine —
// the obs ticker on a live node, the tick loop in the fleet simulator.
// Returns the alerts fired this step (already appended to the ring).
func (o *NodeObs) StepObs(now time.Time) []obs.Alert {
	if o == nil {
		return nil
	}
	o.RecordSLOSample(now)
	fired := o.Drift.Step(now)
	return append(fired, o.stepOps(now)...)
}

// stepOps checks the serving-path ops signals against the counters
// accumulated since the previous step.
func (o *NodeObs) stepOps(now time.Time) []obs.Alert {
	var fired []obs.Alert
	w := o.Server.Snapshot()
	shed := w.ShedAcceptQueue + w.ShedInflight + w.ShedPerConn
	var reqs uint64
	for _, c := range o.requests {
		reqs += c.Value()
	}
	reqs += o.reqOther.Value()
	dShed, dReqs := shed-o.opsPrevShed, reqs-o.opsPrevReqs
	o.opsPrevShed, o.opsPrevReqs = shed, reqs
	if total := dShed + dReqs; total >= shedRateMinEvents {
		if rate := float64(dShed) / float64(total); rate > shedRateThreshold {
			fired = append(fired, o.Alerts.Append(obs.Alert{
				Kind:      obs.AlertShedRate,
				Value:     rate,
				Threshold: shedRateThreshold,
				Message: fmt.Sprintf("admission control shed %.1f%% of %d serving attempts since the last step",
					100*rate, total),
				Time: now,
			}))
		}
	}
	// Breaker opens are read back from the registry rather than hooked:
	// InstrumentBreakers owns the set's OnTransition callback, and Counter
	// dedups by series id, so this resolves to the very counter it
	// registered (or a zero counter on a node without breakers).
	opens := o.Registry.Counter("fgcs_breaker_transitions_total",
		"Circuit breaker state changes, by target state.",
		obs.Label{Key: "to", Value: "open"}).Value()
	dOpens := opens - o.opsPrevOpens
	o.opsPrevOpens = opens
	if dOpens >= breakerFlapOpens {
		fired = append(fired, o.Alerts.Append(obs.Alert{
			Kind:      obs.AlertBreakerFlap,
			Value:     float64(dOpens),
			Threshold: breakerFlapOpens,
			Message: fmt.Sprintf("circuit breakers opened %d times since the last step",
				dOpens),
			Time: now,
		}))
	}
	return fired
}

// QueryObs serves the node's observability export for federated
// aggregation. A host gateway only has its own snapshot, so the Local flag
// is moot here.
func (g *Gateway) QueryObs(ctx context.Context, req QueryObsReq) (QueryObsResp, error) {
	return QueryObsResp{Peer: g.machineID, Snapshot: g.sm.Obs().ExportObs(g.machineID)}, nil
}

// QueryObs fetches a node's observability export (an operator surface, like
// QueryStats — deliberately not part of GatewayAPI). Idempotent: retried
// under the caller's policy.
func (r RemoteGateway) QueryObs(ctx context.Context, req QueryObsReq) (QueryObsResp, error) {
	var resp QueryObsResp
	err := r.Caller.CallRetry(ctx, r.Addr, MsgQueryObs, req, &resp, r.timeout())
	return resp, err
}

// cachedPeerObs is a peer's last successfully fetched export, merged marked
// stale when the peer stops answering.
type cachedPeerObs struct {
	export *obs.PeerObs
	at     time.Time
}

// FleetObs fans query-obs out over the ring and merges every peer's export
// into one fleet snapshot. The local export is captured first — before the
// fan-out's own client RPCs run — so a peer's merged counters never include
// traffic caused by the aggregation that is reading them. A peer that fails
// to answer contributes its cached export marked stale with its age; a peer
// with no cached export is recorded unreachable. Either way the peer stays
// visible in the snapshot's status rows.
func (f *FedGateway) FleetObs(ctx context.Context) *obs.FleetSnapshot {
	fs := obs.NewFleetSnapshot()
	fs.Add(f.obs.ExportPeer(f.self.ID), obs.PeerStatus{Peer: f.self.ID, Status: obs.PeerOK})
	for _, p := range f.ring.Peers() {
		if p.ID == f.self.ID {
			continue
		}
		var resp QueryObsResp
		err := f.callPeer(ctx, p, MsgQueryObs, QueryObsReq{Local: true}, &resp, true)
		if err == nil {
			po, derr := obs.DecodeObsSnapshot(resp.Snapshot)
			if derr == nil {
				f.obsCacheMu.Lock()
				if f.obsCache == nil {
					f.obsCache = make(map[string]cachedPeerObs)
				}
				f.obsCache[p.ID] = cachedPeerObs{export: po, at: f.clock.Now()}
				f.obsCacheMu.Unlock()
				fs.Add(po, obs.PeerStatus{Peer: p.ID, Status: obs.PeerOK})
				continue
			}
			err = derr
		}
		f.warn("fed obs fan-out failed", "peer", p.ID, "err", err)
		f.obsCacheMu.Lock()
		c, ok := f.obsCache[p.ID]
		f.obsCacheMu.Unlock()
		if ok {
			fs.Add(c.export, obs.PeerStatus{
				Peer:       p.ID,
				Status:     obs.PeerStale,
				AgeSeconds: f.clock.Now().Sub(c.at).Seconds(),
				Err:        err.Error(),
			})
		} else {
			fs.AddUnreachable(p.ID, err.Error())
		}
	}
	return fs
}

// SetRecoveryPending marks durable-state recovery as in flight (or done).
// A booting node sets it before replaying its WAL and clears it after, so
// Ready gates readiness on recovery completing.
func (f *FedGateway) SetRecoveryPending(pending bool) {
	f.mu.Lock()
	f.recoveryPending = pending
	f.mu.Unlock()
}

// Ready reports nil when the peer can serve authoritatively: durable-state
// recovery (if any) has finished, and the last anti-entropy round delivered
// every push with nothing newly accepted — the ring has converged on this
// peer's shard. Serve /readyz from it; the fleet simulator's restart phase
// polls it instead of counting sync deltas by hand.
func (f *FedGateway) Ready() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.recoveryPending {
		return fmt.Errorf("durable-state recovery in flight")
	}
	if f.syncRounds == 0 {
		return fmt.Errorf("registry sync pending: no anti-entropy round completed")
	}
	if !f.lastRoundOK {
		return fmt.Errorf("ring not converged: last anti-entropy round had failed pushes")
	}
	if f.lastRoundAccepted > 0 {
		return fmt.Errorf("ring converging: peers accepted %d entries in the last anti-entropy round", f.lastRoundAccepted)
	}
	return nil
}
