package ishare

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeRequest hammers the server-side request decoder — the exact code
// path every untrusted TCP connection reaches — with arbitrary bytes. A
// successful decode must survive a marshal/decode round trip, and no input
// may panic the decoder under any byte cap.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"type":"query-tr","payload":{"length_seconds":3600,"guest_mem_mb":100}}`))
	f.Add([]byte(`{"type":"submit","payload":{"name":"sim1","work_seconds":7200,"mem_mb":100,"idempotency_key":"a/b-k1"}}`))
	f.Add([]byte(`{"type":"job-status","payload":{"job_id":"lab-01-job-1"}}`))
	f.Add([]byte(`{"type":"query-stats","payload":{"calibration":true}}`))
	f.Add([]byte(`{"type":"register","payload":{"machine_id":"m","addr":"1.2.3.4:7070","ttl_seconds":90}}`))
	f.Add([]byte(`{"type":""}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0x00, 0xff, 0xfe})
	// Trace-context propagation: a sampled header, a parentless header, a
	// malformed (non-hex) header — all must decode, and well-formed span and
	// trace IDs must survive the round trip.
	f.Add([]byte(`{"type":"query-tr","payload":{"length_seconds":60},"trace":{"trace_id":"00000000000007a5","span_id":"deadbeefcafef00d","sampled":true}}`))
	f.Add([]byte(`{"type":"query-traces","payload":{"limit":5,"events":true},"trace":{"trace_id":"ffffffffffffffff"}}`))
	f.Add([]byte(`{"type":"submit","trace":{"trace_id":"not hex","span_id":"","sampled":true}}`))
	// Unknown fields ride along without breaking old/new interop.
	f.Add([]byte(`{"type":"query-tr","payload":{"length_seconds":60},"trace":{"trace_id":"00000000000007a5","future_field":1},"another_unknown":"x"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// A tiny cap must degrade to an error, never a panic.
		_, _ = DecodeRequest(bytes.NewReader(data), 8)
		req, err := DecodeRequest(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		// The trace header must never panic the link parser, and any
		// well-formed link must survive re-encoding.
		link := req.Trace.Link()
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		again, err := DecodeRequest(bytes.NewReader(out), 1<<16)
		if err != nil {
			t.Fatalf("re-decode of %q: %v", out, err)
		}
		if again.Type != req.Type {
			t.Fatalf("type changed across round trip: %q -> %q", req.Type, again.Type)
		}
		if again.Trace.Link() != link {
			t.Fatalf("trace link changed across round trip: %+v -> %+v", link, again.Trace.Link())
		}
	})
}

// FuzzDecodeResponse does the same for the client-side response decoder,
// which reads whatever a (possibly compromised or buggy) far end sent back.
func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte(`{"ok":true,"payload":{"tr":0.93,"history_windows":12}}`))
	f.Add([]byte(`{"ok":false,"error":"machine lab-01 already runs a guest job"}`))
	f.Add([]byte(`{"ok":true,"payload":{"resources":[{"machine_id":"m","addr":"a:1"}]}}`))
	f.Add([]byte(`{"ok":true}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"ok":"yes"}`))
	f.Add([]byte{'{'})
	// Responses from a newer peer may carry fields this build has never
	// heard of (e.g. trace echoes); they must be tolerated, not rejected.
	f.Add([]byte(`{"ok":true,"payload":{"machine_id":"m1","total_recorded":3,"traces":[{"trace_id":"00000000000007a5","spans":[{"trace_id":"00000000000007a5","span_id":"0000000000000001","name":"gateway.dispatch"}]}]}}`))
	f.Add([]byte(`{"ok":true,"trace":{"trace_id":"00000000000007a5"},"future_field":[1,2,3]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeResponse(bytes.NewReader(data), 8)
		resp, err := DecodeResponse(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		out, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("decoded response does not re-encode: %v", err)
		}
		again, err := DecodeResponse(bytes.NewReader(out), 1<<16)
		if err != nil {
			t.Fatalf("re-decode of %q: %v", out, err)
		}
		if again.OK != resp.OK || again.Error != resp.Error {
			t.Fatalf("envelope changed across round trip: %+v -> %+v", resp, again)
		}
	})
}
