package ishare

import (
	"context"
	"fmt"
	"time"

	"fgcs/internal/jobest"
	"fgcs/internal/otrace"
	"fgcs/internal/simclock"
)

// Supervisor drives a guest job to completion across machine failures: it
// places the job on the most reliable machine, polls its status, and on an
// unrecoverable failure migrates the job — resuming from its checkpointed
// progress — to the next-best machine. This closes the loop the paper
// motivates: prediction-driven placement plus checkpoint-based migration
// (Sections 1 and 5.1).
type Supervisor struct {
	// Sched ranks and submits.
	Sched *Scheduler
	// Clock paces the polling; defaults to the wall clock.
	Clock simclock.Clock
	// PollInterval defaults to the monitoring period (6 s).
	PollInterval time.Duration
	// MaxMigrations bounds recovery attempts. nil defaults to 5; a
	// pointer to 0 (e.g. ishare.Int(0)) means "never migrate" — the
	// pointer form exists precisely so zero is expressible.
	MaxMigrations *int
	// CheckpointFraction is how much of a killed job's progress survives
	// in its last checkpoint. nil defaults to 1 (checkpoint-on-kill
	// always succeeds, the paper's migration scenario); a pointer to 0
	// (ishare.Float(0)) means every kill restarts from scratch. Values
	// are clamped to [0, 1].
	CheckpointFraction *float64
	// UnreachableGrace distinguishes a network flake from a revoked
	// machine: JobStatus transport failures are tolerated until they
	// persist for this long, and only then is the machine declared
	// unreachable (URR) and the job migrated. 0 keeps the strict
	// behavior: the first failed poll migrates.
	UnreachableGrace time.Duration
	// Estimator, when set, closes the requirements loop: completed runs
	// are recorded under the job's Name as its class, and RunClass can
	// submit future jobs from those estimates (the paper's Section 5.1
	// flow: execution-time and memory estimation feed the TR query).
	Estimator *jobest.Estimator
}

// Placement records one stop of a supervised job.
type Placement struct {
	MachineID string
	JobID     string
	// TR is the predicted reliability at submission.
	TR float64
	// Outcome is the terminal status on this machine ("completed",
	// "killed", or "abandoned" if the supervisor gave up while running).
	Outcome string
	Reason  string
}

// JobRun is the outcome of a supervised execution.
type JobRun struct {
	Placements []Placement
	// Final is the last observed status.
	Final JobStatusResp
	// Migrations counts recoveries after kills.
	Migrations int
	// TransientErrors counts status polls that failed but were forgiven
	// within the unreachable-grace window.
	TransientErrors int
}

// Completed reports whether the job finished its work.
func (jr JobRun) Completed() bool { return jr.Final.State == "completed" }

// Int returns a pointer to v, for Supervisor.MaxMigrations.
func Int(v int) *int { return &v }

// Float returns a pointer to v, for Supervisor.CheckpointFraction.
func Float(v float64) *float64 { return &v }

func (sv *Supervisor) defaults() (simclock.Clock, time.Duration, int, float64) {
	clock := sv.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	poll := sv.PollInterval
	if poll <= 0 {
		poll = 6 * time.Second
	}
	max := 5
	if sv.MaxMigrations != nil && *sv.MaxMigrations >= 0 {
		max = *sv.MaxMigrations
	}
	cf := 1.0
	if sv.CheckpointFraction != nil {
		cf = *sv.CheckpointFraction
	}
	if cf < 0 {
		cf = 0
	}
	if cf > 1 {
		cf = 1
	}
	return clock, poll, max, cf
}

// Run submits the job and supervises it to completion (or until the
// migration budget is exhausted). It blocks; pace it with a virtual clock in
// simulations. Each placement (initial submit or migration) runs in a
// "supervisor.place" child span of ctx's active span, so a recorded trace of
// a supervised job shows every machine it touched and why it moved.
func (sv *Supervisor) Run(ctx context.Context, job SubmitReq) (JobRun, error) {
	if sv.Sched == nil {
		return JobRun{}, fmt.Errorf("ishare: supervisor needs a scheduler")
	}
	clock, poll, maxMig, cf := sv.defaults()
	var run JobRun
	progress := job.InitialProgressSeconds
	for attempt := 0; ; attempt++ {
		job.InitialProgressSeconds = progress
		pctx, pspan := otrace.StartSpan(ctx, "supervisor.place")
		if pspan != nil {
			pspan.SetAttr(otrace.Int("placement", attempt+1))
		}
		ranked, resp, err := sv.Sched.SubmitBest(pctx, job)
		if err != nil {
			pspan.SetError(err)
			pspan.End()
			return run, fmt.Errorf("ishare: placement %d failed: %w", attempt+1, err)
		}
		if pspan != nil {
			pspan.SetAttr(otrace.String("machine", ranked.MachineID))
		}
		pspan.End()
		placement := Placement{MachineID: ranked.MachineID, JobID: resp.JobID, TR: ranked.TR}
		var unreachableFor time.Duration
		for {
			clock.Sleep(poll)
			st, err := ranked.API.JobStatus(ctx, JobStatusReq{JobID: resp.JobID})
			if err != nil {
				// Distinguish a transient flake from sustained
				// unreachability: only the latter is a revocation.
				unreachableFor += poll
				if unreachableFor < sv.UnreachableGrace {
					run.TransientErrors++
					continue
				}
				// The machine vanished (URR): treat as a kill with the
				// last known progress.
				st = JobStatusResp{JobID: resp.JobID, State: "killed", Reason: "gateway unreachable (URR)",
					ProgressSeconds: progress, WorkSeconds: job.WorkSeconds}
			} else {
				unreachableFor = 0
			}
			run.Final = st
			switch st.State {
			case "completed":
				placement.Outcome = "completed"
				run.Placements = append(run.Placements, placement)
				if sv.Estimator != nil && job.Name != "" {
					// Feed the run back into the requirements history.
					_ = sv.Estimator.Record(job.Name, jobest.Run{
						WorkSeconds: st.WorkSeconds,
						MemMB:       job.MemMB,
					})
				}
				return run, nil
			case "killed":
				placement.Outcome = "killed"
				placement.Reason = st.Reason
				run.Placements = append(run.Placements, placement)
				// Resume from the checkpointed share of the progress.
				progress = st.ProgressSeconds * cf
				if progress >= job.WorkSeconds {
					progress = job.WorkSeconds * 0.999
				}
				if attempt+1 > maxMig {
					return run, fmt.Errorf("ishare: job killed %d times, migration budget exhausted", attempt+1)
				}
				run.Migrations++
			default:
				if st.ProgressSeconds > progress {
					progress = st.ProgressSeconds
				}
				continue
			}
			break // killed: re-place
		}
	}
}

// RunClass submits a job whose requirements come from the estimator's
// history for the class (job name = class). It fails when the class lacks
// history; callers then fall back to explicit requirements.
func (sv *Supervisor) RunClass(ctx context.Context, class string) (JobRun, error) {
	if sv.Estimator == nil {
		return JobRun{}, fmt.Errorf("ishare: supervisor has no estimator")
	}
	est, err := sv.Estimator.Estimate(class)
	if err != nil {
		return JobRun{}, err
	}
	return sv.Run(ctx, SubmitReq{Name: class, WorkSeconds: est.WorkSeconds, MemMB: est.MemMB})
}
