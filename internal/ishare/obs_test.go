package ishare

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/obs"
	"fgcs/internal/predict"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
)

// TestObservabilityEndToEnd drives a host node through twelve simulated days
// on a virtual clock, querying TR for the same four-hour window every
// morning, with the machine deterministically failing inside that window on
// every third day. It then checks that the online accuracy tracker's
// empirical survival rate matches the offline predict.EmpiricalTR over the
// exact same recorded days — the Section 5 ground truth — and that the
// QueryStats RPC and the /metrics endpoint expose the same numbers.
func TestObservabilityEndToEnd(t *testing.T) {
	const (
		days    = 12
		machine = "lab-01"
	)
	period := time.Minute
	clock := simclock.NewVirtual(monday)
	node, err := NewHostNode(NodeConfig{
		MachineID: machine,
		Cfg:       avail.DefaultConfig(),
		Period:    period,
		Clock:     clock,
	}, staticSource{})
	if err != nil {
		t.Fatal(err)
	}
	g := node.Gateway

	queryAt := 8 * time.Hour
	job := QueryTRReq{LengthSeconds: (4 * time.Hour).Seconds(), GuestMemMB: 100}
	failStart, failEnd := 10*time.Hour, 11*time.Hour // inside the queried window

	queries := 0
	for d := 0; d < days; d++ {
		date := monday.AddDate(0, 0, d)
		failing := d%3 == 2
		for off := time.Duration(0); off < 24*time.Hour; off += period {
			now := date.Add(off)
			clock.AdvanceTo(now)
			if off == queryAt {
				// Two identical queries: the second must be served
				// from the engine's kernel cache.
				for i := 0; i < 2; i++ {
					if _, err := g.QueryTR(context.Background(), job); err != nil {
						t.Fatalf("day %d query %d: %v", d, i, err)
					}
					queries++
				}
			}
			// A gentle deterministic load ripple keeps the machine idle
			// (below Th1) while giving the AR/MA fitters a non-degenerate
			// series to train on.
			cpu := 10 + 8*math.Sin(2*math.Pi*float64(off)/float64(3*time.Hour))
			s := sample(cpu, 400)
			if failing && off >= failStart && off < failEnd {
				s = trace.Sample{Up: false}
			}
			g.Record(now, s)
		}
	}

	tracker := node.Obs().Tracker
	if p := tracker.Pending(); p != 0 {
		t.Fatalf("pending = %d after all windows closed", p)
	}
	smp := tracker.Stats(machine, "SMP")
	if smp.Resolved != uint64(queries) {
		t.Fatalf("SMP resolved = %d, want %d", smp.Resolved, queries)
	}

	// Offline ground truth: the same window scored over the same recorded
	// days with the offline evaluator the paper's Section 5 figures use.
	cfg := avail.DefaultConfig()
	cfg.GuestMemMB = job.GuestMemMB
	w := predict.Window{Start: queryAt, Length: 4 * time.Hour}
	hist := node.SM.History()
	if len(hist) != days {
		t.Fatalf("recorded %d days, want %d", len(hist), days)
	}
	offline, n := predict.EmpiricalTR(hist, w, cfg)
	if n != days {
		t.Fatalf("offline EmpiricalTR used %d days, want %d", n, days)
	}
	if diff := smp.Empirical - offline; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("online empirical %.6f != offline %.6f", smp.Empirical, offline)
	}
	// The SMP's mean prediction converges toward the observed rate (it
	// starts optimistic with no history, so allow slack), and its Brier
	// score must at least beat the always-wrong extreme.
	if smp.MeanTR <= 0 || smp.MeanTR > 1 {
		t.Fatalf("SMP mean TR = %v out of range", smp.MeanTR)
	}
	if diff := smp.MeanTR - smp.Empirical; diff < -0.3 || diff > 0.3 {
		t.Fatalf("SMP mean TR %.4f far from empirical %.4f", smp.MeanTR, smp.Empirical)
	}
	if smp.Brier >= 0.5 {
		t.Fatalf("SMP Brier = %.4f, want < 0.5", smp.Brier)
	}
	// Every linear baseline is scored online alongside the SMP.
	for _, name := range []string{"AR(8)", "BM(8)", "MA(8)", "ARMA(8,8)", "LAST"} {
		bl := tracker.Stats(machine, name)
		if bl.Resolved != uint64(queries) {
			t.Errorf("%s resolved = %d, want %d", name, bl.Resolved, queries)
		}
	}

	// The engine cache served the repeated morning query.
	st := node.SM.EngineStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("engine cache hits=%d misses=%d, want both > 0", st.Hits, st.Misses)
	}

	// QueryStats over the real wire: server, client retry layer, and the
	// capped decoders all participate.
	srv, err := g.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rg := RemoteGateway{Addr: srv.Addr(), Timeout: 5 * time.Second}
	if _, err := rg.QueryStats(context.Background(), QueryStatsReq{}); err != nil {
		t.Fatal(err)
	}
	resp, err := rg.QueryStats(context.Background(), QueryStatsReq{Calibration: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.MachineID != machine {
		t.Fatalf("machine id = %q", resp.MachineID)
	}
	if resp.Engine.Hits != st.Hits || resp.Engine.Misses != st.Misses {
		t.Fatalf("RPC engine stats %+v != local %+v", resp.Engine, st)
	}
	if resp.Requests[MsgQueryStats] < 1 {
		t.Fatalf("query-stats request count = %d, want >= 1", resp.Requests[MsgQueryStats])
	}
	var gotSMP *obs.AccuracyStats
	for i := range resp.Accuracy {
		if resp.Accuracy[i].Machine == machine && resp.Accuracy[i].Predictor == "SMP" {
			gotSMP = &resp.Accuracy[i]
		}
	}
	if gotSMP == nil {
		t.Fatal("no SMP accuracy row in QueryStats response")
	}
	if gotSMP.Resolved != smp.Resolved || gotSMP.Empirical != smp.Empirical {
		t.Fatalf("RPC accuracy %+v != local %+v", *gotSMP, smp)
	}
	if len(gotSMP.Calibration) == 0 {
		t.Fatal("calibration requested but missing")
	}

	// The /metrics endpoint exposes the registry and the accuracy series.
	rec := httptest.NewRecorder()
	obs.Handler(node.Obs().Registry, tracker).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"fgcs_engine_cache_hits_total",
		"fgcs_engine_fit_seconds_bucket",
		"fgcs_monitor_samples_total",
		"fgcs_gateway_requests_total{type=\"query-stats\"}",
		"fgcs_accuracy_brier{machine=\"lab-01\",predictor=\"SMP\"}",
		"fgcs_accuracy_empirical_tr{machine=\"_all\",predictor=\"LAST\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
