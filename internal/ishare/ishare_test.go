package ishare

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
)

var monday = time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC)

const period = trace.DefaultPeriod

func testNode(t *testing.T, clock simclock.Clock, preloaded *trace.Machine) *HostNode {
	t.Helper()
	n, err := NewHostNode(NodeConfig{
		MachineID: "lab-01",
		Cfg:       avail.DefaultConfig(),
		Period:    period,
		Clock:     clock,
		Preloaded: preloaded,
	}, staticSource{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

type staticSource struct{}

func (staticSource) Read() (float64, float64, error) { return 5, 400, nil }

// sample builds an up sample with the given CPU and free memory.
func sample(cpu, free float64) trace.Sample {
	return trace.Sample{CPU: cpu, FreeMemMB: free, Up: true}
}

// feed pushes n identical samples through the gateway starting at start.
func feed(g *Gateway, start time.Time, s trace.Sample, n int) time.Time {
	t := start
	for i := 0; i < n; i++ {
		g.Record(t, s)
		t = t.Add(period)
	}
	return t
}

func TestGatewaySubmitValidation(t *testing.T) {
	n := testNode(t, simclock.NewVirtual(monday), nil)
	g := n.Gateway
	for _, bad := range []SubmitReq{
		{Name: "a", WorkSeconds: 0},
		{Name: "a", WorkSeconds: 60, MemMB: -1},
		{Name: "a", WorkSeconds: 60, InitialProgressSeconds: -1},
		{Name: "a", WorkSeconds: 60, InitialProgressSeconds: 60},
	} {
		if _, err := g.Submit(context.Background(), bad); err == nil {
			t.Errorf("invalid submit %+v accepted", bad)
		}
	}
	if _, err := g.Submit(context.Background(), SubmitReq{Name: "ok", WorkSeconds: 600, MemMB: 50}); err != nil {
		t.Fatal(err)
	}
	// Only one guest at a time.
	if _, err := g.Submit(context.Background(), SubmitReq{Name: "second", WorkSeconds: 60}); err == nil {
		t.Fatal("second concurrent job accepted")
	}
}

func TestGatewayJobCompletes(t *testing.T) {
	n := testNode(t, simclock.NewVirtual(monday), nil)
	g := n.Gateway
	resp, err := g.Submit(context.Background(), SubmitReq{Name: "job", WorkSeconds: 60, MemMB: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Idle host: progress at ~95% rate → ~11 samples of 6 s.
	feed(g, monday, sample(5, 400), 12)
	st, err := g.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "completed" {
		t.Fatalf("state = %s, progress %v/%v", st.State, st.ProgressSeconds, st.WorkSeconds)
	}
	if st.ProgressSeconds != st.WorkSeconds {
		t.Fatalf("progress %v != work %v", st.ProgressSeconds, st.WorkSeconds)
	}
	// A fresh job may now be submitted.
	if _, err := g.Submit(context.Background(), SubmitReq{Name: "next", WorkSeconds: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGatewayReniceBand(t *testing.T) {
	n := testNode(t, simclock.NewVirtual(monday), nil)
	g := n.Gateway
	resp, _ := g.Submit(context.Background(), SubmitReq{Name: "job", WorkSeconds: 3600, MemMB: 50})
	feed(g, monday, sample(40, 400), 3) // Th1 <= L <= Th2
	st, _ := g.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if st.State != "reniced" {
		t.Fatalf("state = %s, want reniced", st.State)
	}
	// Load drops: back to default priority.
	feed(g, monday.Add(time.Minute), sample(5, 400), 3)
	st, _ = g.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if st.State != "running" {
		t.Fatalf("state = %s, want running", st.State)
	}
}

func TestGatewaySuspendResume(t *testing.T) {
	n := testNode(t, simclock.NewVirtual(monday), nil)
	g := n.Gateway
	resp, _ := g.Submit(context.Background(), SubmitReq{Name: "job", WorkSeconds: 3600, MemMB: 50})
	// 5 samples (30 s) above Th2: suspended but not killed.
	next := feed(g, monday, sample(90, 400), 5)
	st, _ := g.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if st.State != "suspended" {
		t.Fatalf("state = %s, want suspended", st.State)
	}
	progress := st.ProgressSeconds
	// Load diminishes within the limit: the guest resumes (reniced band).
	feed(g, next, sample(40, 400), 2)
	st, _ = g.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if st.State != "reniced" {
		t.Fatalf("state = %s, want reniced after resume", st.State)
	}
	if st.ProgressSeconds <= progress {
		t.Fatal("no progress after resume")
	}
}

func TestGatewayKillsAfterSuspendLimit(t *testing.T) {
	n := testNode(t, simclock.NewVirtual(monday), nil)
	g := n.Gateway
	resp, _ := g.Submit(context.Background(), SubmitReq{Name: "job", WorkSeconds: 3600, MemMB: 50})
	// 11 samples above Th2 ≥ 1 minute: killed (S3).
	feed(g, monday, sample(95, 400), 11)
	st, _ := g.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if st.State != "killed" || !strings.Contains(st.Reason, "S3") {
		t.Fatalf("state = %s (%s), want killed S3", st.State, st.Reason)
	}
}

func TestGatewayKillsOnMemoryPressure(t *testing.T) {
	n := testNode(t, simclock.NewVirtual(monday), nil)
	g := n.Gateway
	resp, _ := g.Submit(context.Background(), SubmitReq{Name: "job", WorkSeconds: 3600, MemMB: 100})
	feed(g, monday, sample(10, 60), 1) // free 60 MB < guest 100 MB
	st, _ := g.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if st.State != "killed" || !strings.Contains(st.Reason, "S4") {
		t.Fatalf("state = %s (%s), want killed S4", st.State, st.Reason)
	}
}

func TestGatewayKillsOnRevocation(t *testing.T) {
	n := testNode(t, simclock.NewVirtual(monday), nil)
	g := n.Gateway
	resp, _ := g.Submit(context.Background(), SubmitReq{Name: "job", WorkSeconds: 3600, MemMB: 50})
	g.Record(monday, trace.Sample{Up: false})
	st, _ := g.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if st.State != "killed" || !strings.Contains(st.Reason, "S5") {
		t.Fatalf("state = %s (%s), want killed S5", st.State, st.Reason)
	}
}

func TestGatewayTransientSpikeDoesNotKill(t *testing.T) {
	n := testNode(t, simclock.NewVirtual(monday), nil)
	g := n.Gateway
	resp, _ := g.Submit(context.Background(), SubmitReq{Name: "job", WorkSeconds: 3600, MemMB: 50})
	next := feed(g, monday, sample(10, 400), 3)
	next = feed(g, next, sample(95, 400), 8) // 48 s < 1 min
	feed(g, next, sample(10, 400), 3)
	st, _ := g.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if st.State != "running" {
		t.Fatalf("state = %s after transient spike, want running", st.State)
	}
}

func TestGatewayKillByClient(t *testing.T) {
	n := testNode(t, simclock.NewVirtual(monday), nil)
	g := n.Gateway
	resp, _ := g.Submit(context.Background(), SubmitReq{Name: "job", WorkSeconds: 3600, MemMB: 50})
	st, err := g.Kill(context.Background(), JobStatusReq{JobID: resp.JobID})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "killed" {
		t.Fatalf("state = %s", st.State)
	}
	if _, err := g.Kill(context.Background(), JobStatusReq{JobID: resp.JobID}); err == nil {
		t.Fatal("double kill accepted")
	}
	if _, err := g.JobStatus(context.Background(), JobStatusReq{JobID: "nope"}); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestJobResumeFromCheckpoint(t *testing.T) {
	n := testNode(t, simclock.NewVirtual(monday), nil)
	g := n.Gateway
	resp, err := g.Submit(context.Background(), SubmitReq{Name: "job", WorkSeconds: 600, MemMB: 50, InitialProgressSeconds: 590})
	if err != nil {
		t.Fatal(err)
	}
	feed(g, monday, sample(0, 400), 3)
	st, _ := g.JobStatus(context.Background(), JobStatusReq{JobID: resp.JobID})
	if st.State != "completed" {
		t.Fatalf("checkpointed job state = %s, progress %v", st.State, st.ProgressSeconds)
	}
}

// historyMachine builds N days of history where the machine fails daily at
// failHour on "bad" machines.
func historyMachine(id string, days int, failHour int) *trace.Machine {
	m := trace.NewMachine(id, period)
	for i := 0; i < days; i++ {
		d := trace.NewDay(monday.AddDate(0, 0, i), period)
		for j := range d.Samples {
			d.Samples[j] = sample(5, 400)
		}
		if failHour >= 0 {
			lo := d.IndexAt(time.Duration(failHour) * time.Hour)
			hi := d.IndexAt(time.Duration(failHour)*time.Hour + 30*time.Minute)
			for j := lo; j < hi; j++ {
				d.Samples[j].Up = false
			}
		}
		if err := m.AddDay(d); err != nil {
			panic(err)
		}
	}
	return m
}

func TestStateManagerQueryTR(t *testing.T) {
	// "Now" is Friday 2005-09-02 08:30; history covers Aug 22 - Sep 1.
	now := time.Date(2005, 9, 2, 8, 30, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	flaky := historyMachine("flaky", 11, 9) // fails at 09:00 daily
	sm, err := NewStateManager("flaky", period, avail.DefaultConfig(), clock, flaky, 0)
	if err != nil {
		t.Fatal(err)
	}
	sm.Record(now, sample(5, 400))
	resp, err := sm.QueryTR(context.Background(), QueryTRReq{LengthSeconds: 2 * 3600, GuestMemMB: 100})
	if err != nil {
		t.Fatal(err)
	}
	// The machine fails at 09:00 every weekday. Under the default
	// restart estimation the post-recovery data dilutes the kernel, so
	// the prediction is not ~0, but it must be far below a solid
	// machine's 1.0.
	if resp.TR > 0.7 {
		t.Fatalf("TR = %v, want well below 1 (the machine fails at 09:00 every weekday)", resp.TR)
	}
	if resp.CurrentState != "S1" {
		t.Fatalf("current state = %s", resp.CurrentState)
	}
	if resp.HistoryWindows == 0 {
		t.Fatal("no history windows used")
	}

	solid := historyMachine("solid", 11, -1)
	sm2, _ := NewStateManager("solid", period, avail.DefaultConfig(), clock, solid, 0)
	sm2.Record(now, sample(5, 400))
	resp2, err := sm2.QueryTR(context.Background(), QueryTRReq{LengthSeconds: 2 * 3600, GuestMemMB: 100})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.TR != 1 {
		t.Fatalf("solid machine TR = %v, want 1", resp2.TR)
	}
}

func TestStateManagerQueryTRValidation(t *testing.T) {
	clock := simclock.NewVirtual(monday.Add(8 * time.Hour))
	sm, _ := NewStateManager("m", period, avail.DefaultConfig(), clock, nil, 0)
	if _, err := sm.QueryTR(context.Background(), QueryTRReq{LengthSeconds: 0}); err == nil {
		t.Fatal("zero length accepted")
	}
	// No history at all: optimistic TR 1.
	resp, err := sm.QueryTR(context.Background(), QueryTRReq{LengthSeconds: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TR != 1 || resp.HistoryWindows != 0 {
		t.Fatalf("no-history response = %+v", resp)
	}
}

func TestStateManagerCurrentStateUnrecoverable(t *testing.T) {
	clock := simclock.NewVirtual(monday.Add(8 * time.Hour))
	sm, _ := NewStateManager("m", period, avail.DefaultConfig(), clock, nil, 0)
	// Sustained heavy load: current state S3 → TR 0.
	tt := monday.Add(8 * time.Hour)
	for i := 0; i < 15; i++ {
		sm.Record(tt, sample(95, 400))
		tt = tt.Add(period)
	}
	if st := sm.CurrentState(); st != avail.S3 {
		t.Fatalf("current state = %v", st)
	}
	resp, err := sm.QueryTR(context.Background(), QueryTRReq{LengthSeconds: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TR != 0 {
		t.Fatalf("TR = %v for an unavailable machine", resp.TR)
	}
}

func TestStateManagerWindowClipsAtMidnight(t *testing.T) {
	now := time.Date(2005, 9, 2, 23, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	sm, _ := NewStateManager("m", period, avail.DefaultConfig(), clock, historyMachine("m", 11, -1), 0)
	sm.Record(now, sample(5, 400))
	// 10-hour job at 23:00 would cross midnight: must clip, not error.
	resp, err := sm.QueryTR(context.Background(), QueryTRReq{LengthSeconds: 10 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TR != 1 {
		t.Fatalf("TR = %v", resp.TR)
	}
}

func TestSchedulerRanksByTR(t *testing.T) {
	now := time.Date(2005, 9, 2, 8, 30, 0, 0, time.UTC)
	clock := simclock.NewVirtual(now)
	mk := func(id string, failHour int) *Gateway {
		sm, err := NewStateManager(id, period, avail.DefaultConfig(), clock, historyMachine(id, 11, failHour), 0)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGateway(id, avail.DefaultConfig(), period, clock, sm)
		if err != nil {
			t.Fatal(err)
		}
		g.Record(now, sample(5, 400))
		return g
	}
	flaky := mk("flaky", 9)
	solid := mk("solid", -1)
	sched := &Scheduler{Candidates: []Candidate{
		{MachineID: "flaky", API: flaky},
		{MachineID: "solid", API: solid},
	}}
	job := SubmitReq{Name: "job", WorkSeconds: 2 * 3600, MemMB: 100}
	ranked, _, err := sched.Rank(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].MachineID != "solid" {
		t.Fatalf("best machine = %s, want solid", ranked[0].MachineID)
	}
	best, resp, err := sched.SubmitBest(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if best.MachineID != "solid" || resp.JobID == "" {
		t.Fatalf("submitted to %s (%+v)", best.MachineID, resp)
	}
	// The solid machine is now busy; the next submission falls back to
	// the flaky one.
	best2, _, err := sched.SubmitBest(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if best2.MachineID != "flaky" {
		t.Fatalf("fallback machine = %s", best2.MachineID)
	}
}

func TestSchedulerErrors(t *testing.T) {
	s := &Scheduler{}
	if _, _, err := s.Rank(context.Background(), SubmitReq{WorkSeconds: 60}); err == nil {
		t.Fatal("empty candidate set accepted")
	}
	s.Candidates = []Candidate{{MachineID: "gone", API: RemoteGateway{Addr: "127.0.0.1:1", Timeout: 50 * time.Millisecond}}}
	_, fails, err := s.Rank(context.Background(), SubmitReq{WorkSeconds: 60})
	if err == nil {
		t.Fatal("all-unreachable candidates accepted")
	}
	if len(fails) != 1 || fails[0].MachineID != "gone" || !fails[0].Transient() {
		t.Fatalf("rank failures = %v, want one transient failure for 'gone'", fails)
	}
}

func TestStateManagerArchiveAndRestore(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.NewVirtual(monday.AddDate(0, 0, 5))
	pre := historyMachine("lab-01", 3, 9)
	sm, err := NewStateManager("lab-01", period, avail.DefaultConfig(), clock, pre, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Live samples on a later day.
	tt := monday.AddDate(0, 0, 5)
	for i := 0; i < 100; i++ {
		sm.Record(tt, sample(15, 350))
		tt = tt.Add(period)
	}
	path := filepath.Join(dir, "lab-01.trace.gz")
	if err := sm.Archive(path); err != nil {
		t.Fatal(err)
	}
	ds, err := trace.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Machines) != 1 {
		t.Fatalf("machines = %d", len(ds.Machines))
	}
	m := ds.Machines[0]
	if len(m.Days) != 4 {
		t.Fatalf("archived days = %d, want 3 preloaded + 1 live", len(m.Days))
	}
	// The live day's samples survived the round trip.
	last := m.Days[len(m.Days)-1]
	if last.Samples[50].CPU != 15 {
		t.Fatalf("live sample = %+v", last.Samples[50])
	}
	// Restore: a new state manager over the archive answers queries.
	sm2, err := NewStateManager("lab-01", period, avail.DefaultConfig(), clock, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	sm2.Record(clock.Now(), sample(5, 400))
	if _, err := sm2.QueryTR(context.Background(), QueryTRReq{LengthSeconds: 3600}); err != nil {
		t.Fatal(err)
	}
}

func TestStateManagerArchiveLiveWinsOnOverlap(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.NewVirtual(monday)
	pre := historyMachine("lab-01", 1, -1) // preloaded day 0, idle
	sm, _ := NewStateManager("lab-01", period, avail.DefaultConfig(), clock, pre, 0)
	// Live data lands on the SAME calendar day.
	sm.Record(monday.Add(time.Hour), sample(77, 200))
	path := filepath.Join(dir, "m.trace")
	if err := sm.Archive(path); err != nil {
		t.Fatal(err)
	}
	ds, _ := trace.LoadFile(path)
	day := ds.Machines[0].Days[0]
	if got := day.Samples[day.IndexAt(time.Hour)].CPU; got != 77 {
		t.Fatalf("overlap sample CPU = %v, want the live 77", got)
	}
	if len(ds.Machines[0].Days) != 1 {
		t.Fatalf("days = %d, want merged 1", len(ds.Machines[0].Days))
	}
}
