package ishare

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/faultnet"
	"fgcs/internal/otrace"
)

// ephemeralAddr matches the one run-varying artifact in a rendered trace:
// transport errors quote the gateway's ephemeral TCP port. Span names,
// nesting, attrs and events never carry addresses (machine IDs stand in for
// them), so masking the quoted dial target makes the rendering comparable
// byte-for-byte across runs.
var ephemeralAddr = regexp.MustCompile(`127\.0\.0\.1:\d+`)

// tickClock is a deterministic otrace.Clock: every Now() advances one
// millisecond, so span start times — and therefore sibling ordering in the
// rendered tree — depend only on call order, never on the wall clock.
type tickClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

// tracedFaultRun is everything a traced fault-injection run must reproduce
// byte-for-byte under the same seed: the client-side span trees (retry
// attempts, breaker decisions) and the server-side flight-recorder contents
// fetched through the query-traces RPC surface.
type tracedFaultRun struct {
	client string
	server string
}

// runTracedFaultOnce stands up two host nodes over real TCP behind a seeded
// fault network, ranks them three times under a client-side tracer —
// healthy, with m1 partitioned (exhausting the retry budget and tripping the
// breaker), and with m1 benched by the open breaker — and returns the
// structural renderings of every recorded trace on both sides of the wire.
func runTracedFaultOnce(t *testing.T, seed uint64) tracedFaultRun {
	t.Helper()
	start := time.Date(2005, 9, 2, 8, 30, 0, 0, time.UTC)
	fn := faultnet.New(seed, faultnet.Config{DialFailProb: 0.3})
	clock := &stepClock{now: start}
	caller := &Caller{
		Dialer:     fn,
		Retry:      RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		JitterSeed: seed + 1,
	}
	clientRec := otrace.NewRecorder(32)
	clientTracer := otrace.New(otrace.Config{
		SampleRate: 1, Seed: seed, Recorder: clientRec, Clock: &tickClock{t: start},
	})

	const machines = 2
	sched := &Scheduler{Breakers: NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour}, clock)}
	gws := make([]*Gateway, machines)
	for i := 0; i < machines; i++ {
		id := fmt.Sprintf("m%d", i+1)
		sm, err := NewStateManager(id, period, avail.DefaultConfig(), clock, historyMachine(id, 11, -1), 0)
		if err != nil {
			t.Fatal(err)
		}
		gw, err := NewGateway(id, avail.DefaultConfig(), period, clock, sm)
		if err != nil {
			t.Fatal(err)
		}
		gw.Record(start, sample(5, 400))
		// Distinct seeds per node: span IDs are drawn from the tracer's
		// seeded sequence, and two nodes must never mint colliding IDs
		// into the same distributed trace.
		sm.Obs().SetTracing(otrace.New(otrace.Config{
			SampleRate: 1, Seed: seed + uint64(i+1)*1000,
			Recorder: otrace.NewRecorder(32), Clock: &tickClock{t: start},
		}))
		srv, err := gw.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		fn.Alias(srv.Addr(), id)
		sched.Candidates = append(sched.Candidates, Candidate{
			MachineID: id,
			API:       RemoteGateway{Addr: srv.Addr(), Timeout: 2 * time.Second, Caller: caller},
		})
		gws[i] = gw
	}

	job := SubmitReq{Name: "traced-job", WorkSeconds: 300, MemMB: 50}
	rank := func() {
		ctx, root := clientTracer.Start(context.Background(), "client.rank")
		_, _, _ = sched.Rank(ctx, job)
		root.End()
	}
	rank() // healthy: both nodes answer, random dial faults drive retries
	fn.Partition("m1")
	rank() // m1 exhausts every attempt; the breaker trips on the failure
	rank() // m1 is shed without an RPC: a breaker-open event, not a span

	opts := otrace.RenderOptions{} // no timings: the structural tree is the deterministic part
	var client strings.Builder
	for _, rec := range clientRec.Traces(100) {
		client.WriteString(otrace.RenderTraceString([]otrace.TraceRecord{rec}, opts))
	}
	var server strings.Builder
	for _, gw := range gws {
		resp, err := gw.QueryTraces(context.Background(), QueryTracesReq{Limit: 100})
		if err != nil {
			t.Fatal(err)
		}
		byID := make(map[otrace.TraceID][]otrace.TraceRecord)
		var order []otrace.TraceID
		for _, rec := range resp.Traces {
			if _, seen := byID[rec.TraceID]; !seen {
				order = append(order, rec.TraceID)
			}
			byID[rec.TraceID] = append(byID[rec.TraceID], rec)
		}
		for _, id := range order {
			server.WriteString(otrace.RenderTraceString(byID[id], opts))
		}
	}
	return tracedFaultRun{
		client: ephemeralAddr.ReplaceAllString(client.String(), "GATEWAY"),
		server: ephemeralAddr.ReplaceAllString(server.String(), "GATEWAY"),
	}
}

// TestTracedFaultRunDeterministic is the acceptance test for the tracing
// stack under faults: a seeded fault-injection run records retry attempts as
// child spans and breaker sheds as span events, the server-side flight
// recorder stitches the propagated trace context onto its own dispatch
// spans, and the full span forest — client and server — is byte-identical
// across two runs with the same seed.
func TestTracedFaultRunDeterministic(t *testing.T) {
	const seed = 11
	a := runTracedFaultOnce(t, seed)

	// The partitioned ranking exhausted the whole retry budget: the
	// query-tr span carries all six attempts as children and ends in error.
	if !strings.Contains(a.client, "rpc.attempt") {
		t.Fatalf("client traces have no rpc.attempt spans:\n%s", a.client)
	}
	if !strings.Contains(a.client, "attempt=6") {
		t.Fatalf("client traces never reached attempt 6 against the partition:\n%s", a.client)
	}
	if !strings.Contains(a.client, "ERROR") {
		t.Fatalf("client traces recorded no error status:\n%s", a.client)
	}
	// The third ranking shed m1 on the open breaker — as an event on the
	// rank span, with no RPC spans underneath.
	if !strings.Contains(a.client, "@ breaker-open machine=m1") {
		t.Fatalf("client traces missing the breaker-open event:\n%s", a.client)
	}
	// The server side continued the client's traces: its dispatch spans
	// parent the state-manager query and the engine's fit/solve work, and
	// the engine marked its cache decisions on the way.
	for _, want := range []string{
		"gateway.dispatch", "machine=m1", "machine=m2", "rpc=query-tr",
		"state.query-tr", "engine.fit", "engine.solve", "@ cache-miss",
	} {
		if !strings.Contains(a.server, want) {
			t.Fatalf("server traces missing %q:\n%s", want, a.server)
		}
	}

	// Same seed, same bytes — the whole forest, both sides of the wire.
	b := runTracedFaultOnce(t, seed)
	if a.client != b.client {
		t.Fatalf("client span trees differ between identical seeds:\n--- run A ---\n%s\n--- run B ---\n%s", a.client, b.client)
	}
	if a.server != b.server {
		t.Fatalf("server span trees differ between identical seeds:\n--- run A ---\n%s\n--- run B ---\n%s", a.server, b.server)
	}
}
