package ishare

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/durable"
	"fgcs/internal/faultnet"
	"fgcs/internal/otrace"
	"fgcs/internal/simclock"
)

// fedChaosResult is everything a federated chaos run must reproduce
// byte-for-byte under the same seed.
type fedChaosResult struct {
	transcript []string
	errs       []string
	netTrace   []string
	dialFails  int
	forwarded  uint64
	killedPeer string
}

// runFedChaosOnce brings up a three-peer federation over real TCP fronting
// five real prediction gateways, registers every machine with replication
// (K=1 on three peers: each entry lives on two of the three, so every peer
// both serves locally and forwards — with K=2 every peer would hold
// everything and forwarding would never fire), then drives a scripted
// client workload through a seeded fault network on the client→peer hop:
//
//	phase 1: QueryTR for every machine through every peer, a federation-wide
//	         ranking, a submit and a status probe — the healthy baseline.
//	kill:    the peer owning m1's entry is shut down, no drain, no warning.
//	phase 2: the full query matrix again through the survivors, another
//	         ranking (it must still see all five machines), a second submit,
//	         and status + kill for the phase-1 job.
//
// Peer-to-peer and peer-to-machine hops run on a clean network: the chaos
// under test is the dead peer plus the client-hop faults, and keeping the
// inner hops clean makes every transcript value a pure function of the seed.
//
// With binary set, both the faulted client hop and the clean peer-to-peer
// forwarding hop ride pooled multiplexed binary connections; killing a peer
// must then sever the survivors' pooled connections to it, not just refuse
// fresh dials.
func runFedChaosOnce(t *testing.T, seed uint64, binary bool) fedChaosResult {
	t.Helper()
	start := time.Date(2005, 9, 2, 8, 30, 0, 0, time.UTC)
	clock := &stepClock{now: start}
	// No corruption faults here: a flipped byte can still decode as valid
	// JSON with zeroed fields, which would poison the value transcript. The
	// remaining faults (refused dials, resets, truncated writes) always
	// surface as transport errors, so every transcript value is authentic.
	fn := faultnet.New(seed, faultnet.Config{
		DialFailProb:     0.25,
		ResetProb:        0.10,
		PartialWriteProb: 0.05,
	})
	clientCaller := &Caller{
		Dialer:     fn,
		Retry:      RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		JitterSeed: seed + 1,
	}
	if binary {
		pool := &Pool{Dialer: fn}
		defer pool.Close()
		clientCaller.Pool = pool
	}

	nodes := buildFederationWith(t, 3, 1, clock, func(i int, cfg *FedConfig) {
		cfg.Caller.JitterSeed = seed + uint64(i+1)*100
		if binary {
			pool := &Pool{}
			t.Cleanup(func() { pool.Close() })
			cfg.Caller.Pool = pool
		}
		// Threshold 1 + a static clock: the first refused dial to the dead
		// peer opens its breaker and keeps it open, so routing decisions
		// after the kill are identical on every run.
		cfg.Breakers = NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour}, clock)
	})
	for i, n := range nodes {
		fn.Alias(n.srv.Addr(), fmt.Sprintf("fed%d", i))
	}

	// Five real machines. Two carry a daily 09:00 failure in their history,
	// so the ranking has a real TR gradient to order.
	const machines = 5
	for i := 0; i < machines; i++ {
		id := fmt.Sprintf("m%d", i+1)
		failHour := -1
		if i == 1 || i == 3 {
			failHour = 9
		}
		sm, err := NewStateManager(id, period, avail.DefaultConfig(), clock, historyMachine(id, 11, failHour), 0)
		if err != nil {
			t.Fatal(err)
		}
		gw, err := NewGateway(id, avail.DefaultConfig(), period, clock, sm)
		if err != nil {
			t.Fatal(err)
		}
		gw.Record(start, sample(5, 400))
		srv, err := gw.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		// Registration goes over a clean hop, as a host heartbeat would.
		fedRegister(t, nodes[i%len(nodes)].srv.Addr(), id, srv.Addr(), 0)
	}

	res := fedChaosResult{}
	clients := make([]FedClient, len(nodes))
	for i, n := range nodes {
		clients[i] = FedClient{Addr: n.srv.Addr(), Timeout: 2 * time.Second, Caller: clientCaller}
	}
	add := func(format string, args ...interface{}) {
		res.transcript = append(res.transcript, fmt.Sprintf(format, args...))
	}
	fail := func(op string, err error) {
		res.errs = append(res.errs, fmt.Sprintf("%s: %v", op, err))
	}
	queryAll := func(entries []int) {
		for _, e := range entries {
			for m := 1; m <= machines; m++ {
				id := fmt.Sprintf("m%d", m)
				resp, err := clients[e].QueryTR(context.Background(), id, QueryTRReq{LengthSeconds: 3600, GuestMemMB: 100})
				if err != nil {
					fail(fmt.Sprintf("query fed%d %s", e, id), err)
					continue
				}
				// Cache counters are excluded: retried RPCs can re-execute
				// server-side, so they are not seed-deterministic. TR, state
				// and history depth are.
				add("query fed%d %s tr=%.4f state=%s hist=%d", e, id, resp.TR, resp.CurrentState, resp.HistoryWindows)
			}
		}
	}
	rank := func(entry int) *FedRankResp {
		ranking, err := clients[entry].Rank(context.Background(), SubmitReq{WorkSeconds: 3600, MemMB: 100})
		if err != nil {
			fail(fmt.Sprintf("rank fed%d", entry), err)
			return nil
		}
		ids := make([]string, 0, len(ranking.Ranked))
		for _, r := range ranking.Ranked {
			ids = append(ids, r.MachineID)
		}
		add("rank fed%d n=%d failures=%d order=%s", entry, len(ranking.Ranked), len(ranking.Failures), strings.Join(ids, ">"))
		return &ranking
	}

	// Phase 1: healthy baseline through every entry peer.
	queryAll([]int{0, 1, 2})
	rank(1)
	job1, err := clients[2].Submit(context.Background(), "m2", SubmitReq{Name: "fed-chaos-1", WorkSeconds: 300, MemMB: 50})
	if err != nil {
		fail("submit m2", err)
	} else {
		add("submit fed2 m2 job=%s", job1.JobID)
	}
	if st, err := clients[0].JobStatus(context.Background(), "m2", JobStatusReq{JobID: job1.JobID}); err != nil {
		fail("status m2", err)
	} else {
		add("status fed0 m2 %s state=%s", st.JobID, st.State)
	}

	// Kill the peer owning m1's entry, mid-run.
	killed := -1
	owner := nodes[0].gw.Candidates("m1")[0].ID
	for i, n := range nodes {
		if n.gw.Self().ID == owner {
			killed = i
		}
	}
	if killed < 0 {
		t.Fatalf("no peer matches m1's owner %s", owner)
	}
	res.killedPeer = owner
	if st := nodes[killed].gw.RingStats(); st.Owned == 0 {
		t.Fatalf("peer %s owns no entries; the kill would prove nothing", owner)
	}
	nodes[killed].srv.Close()
	add("kill-peer %s", owner)

	// Phase 2: every machine must still answer through the survivors.
	survivors := []int{}
	for i := range nodes {
		if i != killed {
			survivors = append(survivors, i)
		}
	}
	queryAll(survivors)
	if ranking := rank(survivors[0]); ranking != nil && len(ranking.Ranked) != machines {
		fail("rank after kill", fmt.Errorf("ranked %d machines, want %d (failures: %v)", len(ranking.Ranked), machines, ranking.Failures))
	}
	if job2, err := clients[survivors[1]].Submit(context.Background(), "m4", SubmitReq{Name: "fed-chaos-2", WorkSeconds: 120, MemMB: 40}); err != nil {
		fail("submit m4", err)
	} else {
		add("submit fed%d m4 job=%s", survivors[1], job2.JobID)
	}
	if st, err := clients[survivors[0]].JobStatus(context.Background(), "m2", JobStatusReq{JobID: job1.JobID}); err != nil {
		fail("status m2 after kill", err)
	} else {
		add("status fed%d m2 %s state=%s", survivors[0], st.JobID, st.State)
	}
	if st, err := clients[survivors[0]].Kill(context.Background(), "m2", JobStatusReq{JobID: job1.JobID}); err != nil {
		fail("kill-job m2", err)
	} else {
		add("kill-job fed%d m2 %s state=%s", survivors[0], st.JobID, st.State)
	}

	for _, i := range survivors {
		res.forwarded += nodes[i].gw.RingStats().Forwarded
	}
	res.netTrace = fn.Trace()
	res.dialFails = fn.DialFailures()
	return res
}

// TestChaosFederatedGatewayLoss is the acceptance test for the federated
// control plane: with one of three gateways killed mid-run, every QueryTR,
// Submit, Rank, JobStatus and Kill for every machine still succeeds via
// forwarding and replicas — under sustained client-hop dial failures and
// stream faults — and the whole run is byte-deterministic under a fixed
// seed.
func TestChaosFederatedGatewayLoss(t *testing.T) {
	const seed = 4
	a := runFedChaosOnce(t, seed, false)
	if len(a.errs) != 0 {
		t.Fatalf("federated ops failed after gateway loss:\n%s\ntranscript:\n%s",
			strings.Join(a.errs, "\n"), strings.Join(a.transcript, "\n"))
	}
	// 15 healthy queries + rank + submit + status, the kill marker, then 10
	// survivor queries + rank + submit + status + kill-job.
	if len(a.transcript) != 33 {
		t.Fatalf("transcript has %d entries, want 33:\n%s", len(a.transcript), strings.Join(a.transcript, "\n"))
	}
	joined := strings.Join(a.transcript, "\n")
	// The ranking gradient is real: clean machines outrank the two with a
	// 09:00 failure in their history, in both rankings.
	if !strings.Contains(joined, "n=5 failures=0") {
		t.Fatalf("rankings did not cover all five machines cleanly:\n%s", joined)
	}
	for _, r := range a.transcript {
		if !strings.HasPrefix(r, "rank ") {
			continue
		}
		order := r[strings.Index(r, "order=")+len("order="):]
		if strings.Index(order, "m2") < strings.Index(order, "m1") || strings.Index(order, "m4") < strings.Index(order, "m5") {
			t.Fatalf("failure-prone m2/m4 outranked clean machines: %s", r)
		}
	}
	// Partial replication forced real forwarding among the survivors.
	if a.forwarded == 0 {
		t.Fatal("no surviving peer ever forwarded; the ring routing went unexercised")
	}
	// The fault layer actually fired on the client hop.
	if a.dialFails < 5 {
		t.Fatalf("only %d injected dial failures; the fault layer barely fired", a.dialFails)
	}

	// Determinism: an identical seed reproduces the identical run — the
	// transcript (every TR, every ranking order, every job id) and the full
	// fault-network schedule.
	b := runFedChaosOnce(t, seed, false)
	if len(b.errs) != 0 {
		t.Fatalf("second run failed: %s", strings.Join(b.errs, "\n"))
	}
	if !reflect.DeepEqual(a.transcript, b.transcript) {
		t.Fatalf("transcripts differ between identical seeds:\n--- run A ---\n%s\n--- run B ---\n%s",
			joined, strings.Join(b.transcript, "\n"))
	}
	if !reflect.DeepEqual(a.netTrace, b.netTrace) {
		t.Fatalf("fault traces differ between identical seeds:\n--- run A ---\n%s\n--- run B ---\n%s",
			strings.Join(a.netTrace, "\n"), strings.Join(b.netTrace, "\n"))
	}
	if a.dialFails != b.dialFails || a.killedPeer != b.killedPeer {
		t.Fatalf("fault counts differ: dials %d/%d, killed %s/%s", a.dialFails, b.dialFails, a.killedPeer, b.killedPeer)
	}
	// A different seed draws a different fault schedule.
	c := runFedChaosOnce(t, seed+1, false)
	if reflect.DeepEqual(a.netTrace, c.netTrace) {
		t.Fatal("different seeds produced identical fault traces")
	}
}

// TestChaosFederatedGatewayLossBinary reruns the federated gateway-loss
// scenario with every client→peer and peer→peer hop on pooled multiplexed
// binary connections. Closing the killed peer's server must sever the
// survivors' pooled connections into it (a pool would otherwise keep writing
// into a dead mux forever), forwarding must re-route, and the run must stay
// byte-deterministic under a fixed seed.
func TestChaosFederatedGatewayLossBinary(t *testing.T) {
	const seed = 4
	a := runFedChaosOnce(t, seed, true)
	if len(a.errs) != 0 {
		t.Fatalf("federated ops failed after gateway loss over binary transport:\n%s\ntranscript:\n%s",
			strings.Join(a.errs, "\n"), strings.Join(a.transcript, "\n"))
	}
	if len(a.transcript) != 33 {
		t.Fatalf("transcript has %d entries, want 33:\n%s", len(a.transcript), strings.Join(a.transcript, "\n"))
	}
	joined := strings.Join(a.transcript, "\n")
	if !strings.Contains(joined, "n=5 failures=0") {
		t.Fatalf("rankings did not cover all five machines cleanly:\n%s", joined)
	}
	if a.forwarded == 0 {
		t.Fatal("no surviving peer ever forwarded; the ring routing went unexercised")
	}

	// Determinism over the pooled transport.
	b := runFedChaosOnce(t, seed, true)
	if len(b.errs) != 0 {
		t.Fatalf("second run failed: %s", strings.Join(b.errs, "\n"))
	}
	if !reflect.DeepEqual(a.transcript, b.transcript) {
		t.Fatalf("transcripts differ between identical seeds:\n--- run A ---\n%s\n--- run B ---\n%s",
			joined, strings.Join(b.transcript, "\n"))
	}
	if !reflect.DeepEqual(a.netTrace, b.netTrace) {
		t.Fatalf("fault traces differ between identical seeds:\n--- run A ---\n%s\n--- run B ---\n%s",
			strings.Join(a.netTrace, "\n"), strings.Join(b.netTrace, "\n"))
	}
	if a.dialFails != b.dialFails || a.killedPeer != b.killedPeer {
		t.Fatalf("fault counts differ: dials %d/%d, killed %s/%s", a.dialFails, b.dialFails, a.killedPeer, b.killedPeer)
	}

	// The transcript values are transport-independent: the same seed over
	// the JSON compat path yields the same TRs, rankings and job IDs (the
	// fault schedules differ — pooled transports dial far less — but the
	// application-level results must not).
	j := runFedChaosOnce(t, seed, false)
	if len(j.errs) == 0 && !reflect.DeepEqual(a.transcript, j.transcript) {
		t.Fatalf("binary and JSON transcripts diverge for the same seed:\n--- binary ---\n%s\n--- json ---\n%s",
			joined, strings.Join(j.transcript, "\n"))
	}
}

// TestChaosFedDurableRestart kills a federation peer AND a durable host
// node mid-run, then restarts both from their data directories (dirty
// shutdown: WAL replay, no final snapshot) on the same addresses. The
// restarted peer must rejoin the ring with its registry shard intact before
// any anti-entropy runs, forwarded QueryTR answers must be identical to the
// pre-crash ones, and a replayed submit with the pre-crash idempotency key
// must dedup to the exact pre-crash job ID.
func TestChaosFedDurableRestart(t *testing.T) {
	start := time.Date(2005, 9, 2, 8, 30, 0, 0, time.UTC)
	clock := simclock.NewVirtual(start)
	ctx := context.Background()

	// Replicas -1: every entry lives on exactly one peer, so a restarted
	// peer's entries can only have come from its own WAL.
	nodes := buildFederationWith(t, 3, -1, clock, nil)
	stores := make([]*durable.MemFS, len(nodes))
	persisters := make([]*RegPersister, len(nodes))
	for i, n := range nodes {
		stores[i] = durable.NewMemFS()
		st, rec, err := durable.Open(persistStoreCfg(stores[i]))
		if err != nil {
			t.Fatal(err)
		}
		if persisters[i], err = NewRegPersister(st, rec, n.gw, nil); err != nil {
			t.Fatal(err)
		}
	}

	// One real durable host node plus four stubs spread over the ring.
	hostFS := durable.NewMemFS()
	hst, hrec, err := durable.Open(persistStoreCfg(hostFS))
	if err != nil {
		t.Fatal(err)
	}
	pre := historyMachine("m-dur", 11, 9)
	host, err := NewHostNode(NodeConfig{
		MachineID: "m-dur", Cfg: avail.DefaultConfig(), Period: period,
		Clock: clock, Preloaded: pre, Durable: hst, DurableRecovery: hrec,
	}, staticSource{})
	if err != nil {
		t.Fatal(err)
	}
	host.Persist.Record(start, sample(5, 400))
	hostSrv, err := host.Gateway.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hostAddr := hostSrv.Addr()
	fedRegister(t, nodes[0].srv.Addr(), "m-dur", hostAddr, 0)
	for i := 1; i <= 4; i++ {
		m := newStubMachine(t, fmt.Sprintf("m%d", i), 0.5+float64(i)/10)
		fedRegister(t, nodes[i%len(nodes)].srv.Addr(), m.id, m.addr(), 0)
	}

	owner := pickPeer(t, nodes, "m-dur", true)
	entry := pickPeer(t, nodes, "m-dur", false) // a survivor that must forward
	fc := FedClient{Addr: nodes[entry].srv.Addr(), Timeout: 2 * time.Second, Caller: &Caller{}}

	before, err := fc.QueryTR(ctx, "m-dur", QueryTRReq{LengthSeconds: 3600, GuestMemMB: 100})
	if err != nil {
		t.Fatalf("pre-crash QueryTR: %v", err)
	}
	job1, err := fc.Submit(ctx, "m-dur", SubmitReq{Name: "dur", WorkSeconds: 3600, MemMB: 50, IdempotencyKey: "fed-retry-1"})
	if err != nil {
		t.Fatalf("pre-crash submit: %v", err)
	}
	wantShard := nodes[owner].gw.Export()
	if len(wantShard) == 0 {
		t.Fatal("owner peer holds no entries; the kill would prove nothing")
	}
	ownerAddr := nodes[owner].srv.Addr()

	// Kill peer and host with no warning: dirty close, no final snapshot.
	nodes[owner].srv.Close()
	if err := persisters[owner].Close(); err != nil {
		t.Fatal(err)
	}
	hostSrv.Close()
	if err := host.Persist.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the peer from its WAL on the same ring address.
	st2, rec2, err := durable.Open(persistStoreCfg(stores[owner]))
	if err != nil {
		t.Fatalf("peer recovery: %v", err)
	}
	if len(rec2.Records) == 0 {
		t.Fatal("dirty peer shutdown left no WAL records; replay is untested")
	}
	var ringPeers []Peer
	for _, n := range nodes {
		ringPeers = append(ringPeers, n.gw.Self())
	}
	gw2, err := NewFedGateway(FedConfig{
		Self: nodes[owner].gw.Self(), Peers: ringPeers, Replicas: -1,
		Caller:  &Caller{Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}},
		Timeout: 2 * time.Second, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegPersister(st2, rec2, gw2, nil); err != nil {
		t.Fatal(err)
	}
	// The shard is intact purely from replay — no anti-entropy has run.
	if got := gw2.Export(); !reflect.DeepEqual(got, wantShard) {
		t.Fatalf("restarted shard = %+v, want %+v", got, wantShard)
	}
	srv2, err := NewServer(ownerAddr, gw2.Handler())
	if err != nil {
		t.Fatalf("rebind peer on %s: %v", ownerAddr, err)
	}
	defer srv2.Close()

	// Restart the host node from its WAL on the registered address.
	hst2, hrec2, err := durable.Open(persistStoreCfg(hostFS))
	if err != nil {
		t.Fatalf("host recovery: %v", err)
	}
	if len(hrec2.Records) == 0 {
		t.Fatal("dirty host shutdown left no WAL records; replay is untested")
	}
	host2, err := NewHostNode(NodeConfig{
		MachineID: "m-dur", Cfg: avail.DefaultConfig(), Period: period,
		Clock: clock, Preloaded: pre, Durable: hst2, DurableRecovery: hrec2,
	}, staticSource{})
	if err != nil {
		t.Fatal(err)
	}
	hostSrv2, err := host2.Gateway.Serve(hostAddr)
	if err != nil {
		t.Fatalf("rebind host on %s: %v", hostAddr, err)
	}
	defer hostSrv2.Close()

	// Forwarded requery through the surviving entry peer: identical answer.
	after, err := fc.QueryTR(ctx, "m-dur", QueryTRReq{LengthSeconds: 3600, GuestMemMB: 100})
	if err != nil {
		t.Fatalf("post-restart QueryTR: %v", err)
	}
	if after.TR != before.TR || after.HistoryWindows != before.HistoryWindows || after.CurrentState != before.CurrentState {
		t.Fatalf("QueryTR diverged across restart: before tr=%v hist=%d state=%s, after tr=%v hist=%d state=%s",
			before.TR, before.HistoryWindows, before.CurrentState, after.TR, after.HistoryWindows, after.CurrentState)
	}
	// Exact dedup of the replayed submit: same key, same job ID, even
	// though the job object died with the process.
	job2, err := fc.Submit(ctx, "m-dur", SubmitReq{Name: "dur", WorkSeconds: 3600, MemMB: 50, IdempotencyKey: "fed-retry-1"})
	if err != nil {
		t.Fatalf("replayed submit: %v", err)
	}
	if job2.JobID != job1.JobID {
		t.Fatalf("replayed submit job = %s, want the pre-crash %s", job2.JobID, job1.JobID)
	}
	// A fresh key gets a fresh ID: the job counter was replayed too.
	job3, err := fc.Submit(ctx, "m-dur", SubmitReq{Name: "dur2", WorkSeconds: 60, IdempotencyKey: "fed-retry-2"})
	if err != nil {
		t.Fatalf("fresh submit: %v", err)
	}
	if job3.JobID == job1.JobID {
		t.Fatalf("fresh submit reused job ID %s", job1.JobID)
	}
}

// TestFedForwardedTraceStitched pins the tentpole tracing property: a
// request that enters at a non-owning peer and is forwarded renders as ONE
// span tree — client root → rpc attempts → entry peer's fed.dispatch →
// owner peer's fed.dispatch → machine gateway's gateway.dispatch → the
// state manager's query — once the per-process flight recorders are merged
// on trace ID, exactly as `isharec traces` does.
func TestFedForwardedTraceStitched(t *testing.T) { runStitchedTrace(t, false) }

// TestFedForwardedTraceStitchedBinary pins the same stitched-trace property
// with every hop on pooled binary connections: the trace header travels in
// the frame itself, so the forwarded request must still render as one tree.
func TestFedForwardedTraceStitchedBinary(t *testing.T) { runStitchedTrace(t, true) }

func runStitchedTrace(t *testing.T, binary bool) {
	start := time.Date(2005, 9, 2, 8, 30, 0, 0, time.UTC)
	const seed = 21
	recs := make([]*otrace.Recorder, 3)
	// Distinct seeds per process: no two participants may mint colliding
	// span IDs into the same distributed trace.
	nodes := buildFederationWith(t, 3, -1, nil, func(i int, cfg *FedConfig) {
		recs[i] = otrace.NewRecorder(32)
		cfg.Tracer = otrace.New(otrace.Config{
			SampleRate: 1, Seed: seed + uint64(i+1)*1000,
			Recorder: recs[i], Clock: &tickClock{t: start},
		})
		if binary {
			pool := &Pool{}
			t.Cleanup(func() { pool.Close() })
			cfg.Caller.Pool = pool
		}
	})

	clock := &stepClock{now: start}
	sm, err := NewStateManager("m-traced", period, avail.DefaultConfig(), clock, historyMachine("m-traced", 11, -1), 0)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := NewGateway("m-traced", avail.DefaultConfig(), period, clock, sm)
	if err != nil {
		t.Fatal(err)
	}
	gw.Record(start, sample(5, 400))
	machineRec := otrace.NewRecorder(32)
	sm.Obs().SetTracing(otrace.New(otrace.Config{
		SampleRate: 1, Seed: seed + 9000,
		Recorder: machineRec, Clock: &tickClock{t: start},
	}))
	srv, err := gw.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	fedRegister(t, nodes[0].srv.Addr(), "m-traced", srv.Addr(), 0)

	// No replication: exactly one peer holds the entry, so entering anywhere
	// else guarantees a forward.
	entry := pickPeer(t, nodes, "m-traced", false)
	clientRec := otrace.NewRecorder(32)
	clientTracer := otrace.New(otrace.Config{
		SampleRate: 1, Seed: seed, Recorder: clientRec, Clock: &tickClock{t: start},
	})
	clientCaller := &Caller{}
	if binary {
		pool := &Pool{}
		defer pool.Close()
		clientCaller.Pool = pool
	}
	fc := FedClient{Addr: nodes[entry].srv.Addr(), Caller: clientCaller}
	ctx, root := clientTracer.Start(context.Background(), "client.query-tr")
	resp, err := fc.QueryTR(ctx, "m-traced", QueryTRReq{LengthSeconds: 3600, GuestMemMB: 100})
	root.End()
	if err != nil {
		t.Fatalf("forwarded QueryTR: %v", err)
	}
	if resp.TR <= 0 {
		t.Fatalf("forwarded QueryTR returned TR %v", resp.TR)
	}

	// Merge every process's flight-recorder shard of the client's trace and
	// render them as one tree.
	clientTraces := clientRec.Traces(10)
	if len(clientTraces) != 1 {
		t.Fatalf("client recorded %d traces, want 1", len(clientTraces))
	}
	id := clientTraces[0].TraceID
	merged := clientTraces
	for _, rec := range append(recs, machineRec) {
		if shard, ok := rec.Trace(id); ok {
			merged = append(merged, shard...)
		}
	}
	rendered := ephemeralAddr.ReplaceAllString(
		otrace.RenderTraceString(merged, otrace.RenderOptions{}), "GATEWAY")

	// One stitched tree: a single root line (the client span at depth 0),
	// with both peers' dispatch spans and the machine's dispatch underneath.
	var roots []string
	for _, line := range strings.Split(rendered, "\n") {
		if strings.HasPrefix(line, "  ") && !strings.HasPrefix(line, "   ") {
			roots = append(roots, strings.TrimSpace(line))
		}
	}
	if len(roots) != 1 || !strings.HasPrefix(roots[0], "client.query-tr") {
		t.Fatalf("merged trace has roots %v, want exactly [client.query-tr]:\n%s", roots, rendered)
	}
	if n := strings.Count(rendered, "fed.dispatch"); n != 2 {
		t.Fatalf("stitched trace has %d fed.dispatch spans, want 2 (entry + owner):\n%s", n, rendered)
	}
	for _, want := range []string{
		"fed.dispatch", "rpc=" + MsgFedQueryTR, "rpc=" + MsgQueryTR,
		"gateway.dispatch", "machine=m-traced", "state.query-tr", "rpc.attempt",
	} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("stitched trace missing %q:\n%s", want, rendered)
		}
	}
	// The entry peer's dispatch parents the owner peer's dispatch: the
	// second fed.dispatch line is indented deeper than the first.
	lines := strings.Split(rendered, "\n")
	var depths []int
	for _, line := range lines {
		if strings.Contains(line, "fed.dispatch") {
			depths = append(depths, len(line)-len(strings.TrimLeft(line, " ")))
		}
	}
	if len(depths) != 2 || depths[1] <= depths[0] {
		t.Fatalf("fed.dispatch spans not nested entry→owner (indents %v):\n%s", depths, rendered)
	}
}
