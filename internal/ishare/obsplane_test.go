package ishare

import (
	"context"
	"strings"
	"testing"
	"time"

	"fgcs/internal/obs"
	"fgcs/internal/simclock"
)

func TestStepObsShedRateAlert(t *testing.T) {
	o := NewNodeObs()
	now := time.Date(2026, 6, 4, 0, 0, 0, 0, time.UTC)

	// First step establishes the cursors over a clean baseline.
	o.requests[MsgQueryTR].Add(30)
	if fired := o.StepObs(now); len(fired) != 0 {
		t.Fatalf("baseline step fired %+v", fired)
	}

	// 15 sheds against 85 served requests: 15% > the 10% threshold.
	for i := 0; i < 15; i++ {
		o.Server.shedInflight()
	}
	o.requests[MsgQueryTR].Add(85)
	fired := o.StepObs(now.Add(15 * time.Second))
	if len(fired) != 1 || fired[0].Kind != obs.AlertShedRate {
		t.Fatalf("want one shed-rate alert, got %+v", fired)
	}
	if fired[0].Value <= fired[0].Threshold {
		t.Errorf("shed rate %.3f not above threshold %.3f", fired[0].Value, fired[0].Threshold)
	}
	if got := o.Alerts.Alerts(0); len(got) != 1 || got[0].Seq != fired[0].Seq {
		t.Errorf("alert not appended to the node ring: %+v", got)
	}

	// A quiet step (under the minimum event count) must not divide by noise.
	o.Server.shedInflight()
	if fired := o.StepObs(now.Add(30 * time.Second)); len(fired) != 0 {
		t.Fatalf("sub-minimum step fired %+v", fired)
	}
}

func TestStepObsBreakerFlapAlert(t *testing.T) {
	o := NewNodeObs()
	// The very counter InstrumentBreakers registers; Counter dedups by
	// series id so stepOps reads this one back.
	opens := o.Registry.Counter("fgcs_breaker_transitions_total",
		"Circuit breaker state changes, by target state.",
		obs.Label{Key: "to", Value: "open"})
	now := time.Date(2026, 6, 4, 0, 0, 0, 0, time.UTC)
	o.StepObs(now)

	opens.Add(2) // two opens in a step: below the flap threshold
	if fired := o.StepObs(now.Add(15 * time.Second)); len(fired) != 0 {
		t.Fatalf("two opens fired %+v", fired)
	}
	opens.Add(3)
	fired := o.StepObs(now.Add(30 * time.Second))
	if len(fired) != 1 || fired[0].Kind != obs.AlertBreakerFlap {
		t.Fatalf("want one breaker-flap alert, got %+v", fired)
	}
	if fired[0].Value != 3 {
		t.Errorf("flap alert value %.0f, want 3 (the per-step delta)", fired[0].Value)
	}
}

func TestFedQueryObsLocalAndFleet(t *testing.T) {
	// Peers need a NodeObs wired for served RPCs to count; buildFederation
	// leaves it off (most tests do not want metric overhead).
	nodes := buildFederationWith(t, 3, 1, nil, func(i int, cfg *FedConfig) {
		cfg.Obs = NewNodeObs()
	})
	ctx := context.Background()
	caller := &Caller{}

	// The local form answers with this peer's binary export.
	var resp QueryObsResp
	if err := caller.Call(ctx, nodes[1].srv.Addr(), MsgQueryObs, QueryObsReq{Local: true}, &resp, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if resp.Fleet != nil {
		t.Error("local form answered with a fleet view")
	}
	po, err := obs.DecodeObsSnapshot(resp.Snapshot)
	if err != nil {
		t.Fatalf("local export does not decode: %v", err)
	}
	if po.Peer != "fed1" {
		t.Errorf("local export names peer %q, want fed1", po.Peer)
	}

	// The federated form fans out and merges: every peer ok, and the peers'
	// serving counters (they each just served our RPCs) are in the merge.
	resp = QueryObsResp{}
	if err := caller.Call(ctx, nodes[0].srv.Addr(), MsgQueryObs, QueryObsReq{}, &resp, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if resp.Fleet == nil {
		t.Fatal("federated form returned no fleet view")
	}
	if len(resp.Fleet.Peers) != 3 {
		t.Fatalf("%d peer rows, want 3", len(resp.Fleet.Peers))
	}
	for _, p := range resp.Fleet.Peers {
		if p.Status != obs.PeerOK {
			t.Errorf("peer %s status %q, want ok", p.Peer, p.Status)
		}
	}
	var served uint64
	for id, v := range resp.Fleet.Counters {
		if strings.HasPrefix(id, "fgcs_gateway_requests_total") {
			served += v
		}
	}
	if served == 0 {
		t.Error("merged fleet view carries no serving counters")
	}
}

func TestFedFleetObsStaleAndUnreachable(t *testing.T) {
	nodes := buildFederation(t, 3, 1, nil)
	ctx := context.Background()

	// Warm pass: every peer answers, and fed1's export lands in the cache.
	fs := nodes[0].gw.FleetObs(ctx)
	for _, p := range fs.Peers {
		if p.Status != obs.PeerOK {
			t.Fatalf("warm pass: peer %s status %q", p.Peer, p.Status)
		}
	}

	// fed1 goes down: its cached export merges marked stale, with the fetch
	// error on the row; the fleet totals still include its counters.
	nodes[1].srv.Close()
	fs = nodes[0].gw.FleetObs(ctx)
	statuses := map[string]obs.PeerStatus{}
	for _, p := range fs.Peers {
		statuses[p.Peer] = p
	}
	if st := statuses["fed1"]; st.Status != obs.PeerStale || st.Err == "" {
		t.Errorf("down peer with warm cache: %+v, want stale with an error", st)
	}
	if st := statuses["fed2"]; st.Status != obs.PeerOK {
		t.Errorf("healthy peer marked %q", st.Status)
	}

	// A peer that was never reached has nothing to serve stale: a fresh
	// aggregator marks it unreachable.
	fresh := buildFederation(t, 3, 1, nil)
	fresh[2].srv.Close()
	fs = fresh[0].gw.FleetObs(ctx)
	statuses = map[string]obs.PeerStatus{}
	for _, p := range fs.Peers {
		statuses[p.Peer] = p
	}
	if st := statuses["fed2"]; st.Status != obs.PeerUnreachable || st.Err == "" {
		t.Errorf("never-seen down peer: %+v, want unreachable with an error", st)
	}
}

func TestFedReadyTransitions(t *testing.T) {
	// A shared frozen clock makes convergence deterministic: a re-pushed
	// entry recomputes an identical expiry, so fresher-wins rejects it and
	// the accepted-count delta reaches zero. Under wall clocks the recomputed
	// expiry shifts by delivery-latency jitter and rounds can keep accepting.
	clock := simclock.NewVirtual(time.Date(2026, 6, 4, 0, 0, 0, 0, time.UTC))
	nodes := buildFederation(t, 3, 2, clock)
	gw := nodes[0].gw
	ctx := context.Background()

	if err := gw.Ready(); err == nil || !strings.Contains(err.Error(), "sync pending") {
		t.Fatalf("fresh gateway ready: %v", err)
	}
	gw.SetRecoveryPending(true)
	if err := gw.Ready(); err == nil || !strings.Contains(err.Error(), "recovery") {
		t.Fatalf("recovering gateway: %v", err)
	}
	gw.SetRecoveryPending(false)

	gw.SyncOnce(ctx)
	if err := gw.Ready(); err != nil {
		t.Fatalf("empty-registry gateway not ready after a sync round: %v", err)
	}

	// Hand fed0 an entry its peers have not seen (a replica push, as if the
	// others restarted): the next round delivers it, peers newly accept, and
	// readiness holds back until a round changes nothing.
	caller := &Caller{}
	push := FedSyncReq{From: "fed9", Entries: []FedEntry{{MachineID: "m-ready", Addr: "127.0.0.1:9", TTLSeconds: 300}}}
	if err := caller.Call(ctx, nodes[0].srv.Addr(), MsgFedSync, push, nil, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	gw.SyncOnce(ctx)
	if err := gw.Ready(); err == nil || !strings.Contains(err.Error(), "converging") {
		t.Fatalf("gateway ready while peers were still accepting entries: %v", err)
	}
	gw.SyncOnce(ctx)
	if err := gw.Ready(); err != nil {
		t.Fatalf("gateway not ready after convergence: %v", err)
	}
}
