package ishare

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/faultnet"
	"fgcs/internal/trace"
)

// stepClock drives the chaos testbed. The supervisor's poll loop is the only
// sleeper: each Sleep synchronously runs one step of the chaos schedule —
// advance virtual time, apply scheduled partitions and crashes, feed every
// gateway one monitoring sample. Because the whole run is then a single
// thread of control (supervisor RPC → step → RPC → ...), every dial hits the
// fault network in the same order on every run, which is what makes the
// fault schedule and the decision trace byte-reproducible.
type stepClock struct {
	mu   sync.Mutex
	now  time.Time
	step int
	hook func(step int, now time.Time)
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a never-firing channel: nothing in the chaos testbed waits
// on timers, and an accidental waiter should hang visibly rather than spin.
func (c *stepClock) After(d time.Duration) <-chan time.Time {
	return make(chan time.Time)
}

func (c *stepClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.step++
	c.now = c.now.Add(d)
	step, now, hook := c.step, c.now, c.hook
	c.mu.Unlock()
	if hook != nil {
		hook(step, now)
	}
}

// chaosResult captures everything that must be identical across two runs
// with the same seed.
type chaosResult struct {
	run        JobRun
	err        error
	trace      []string
	dialFails  int
	transients int
}

// runChaosOnce brings up a five-machine iShare testbed over real TCP, routes
// every client RPC through a seeded fault network (25% dial refusals plus
// mid-stream resets, partial writes and corruption), and supervises one job
// through a scripted outage timeline:
//
//	step  8: m1 (hosting the job) is partitioned — polls fail until the
//	         grace window expires, then the supervisor migrates (URR).
//	step 16: m2 (the new host) is revoked by its owner (down samples) —
//	         the gateway kills the guest (S5) and the supervisor migrates
//	         again, onto m3.
//	step 24: m1 heals (visible in the trace; the breaker keeps it benched).
//
// All faults are drawn from the seed; gateway addresses are aliased to
// logical machine names so ephemeral ports do not perturb the schedule.
// With binary set, the client rides pooled multiplexed binary connections
// through the same fault network (partitions sever the pooled connections);
// otherwise it uses the JSON dial-per-RPC compat path.
func runChaosOnce(t *testing.T, seed uint64, binary bool) chaosResult {
	t.Helper()
	start := time.Date(2005, 9, 2, 8, 30, 0, 0, time.UTC)
	fn := faultnet.New(seed, faultnet.Config{
		DialFailProb:     0.25,
		ResetProb:        0.10,
		PartialWriteProb: 0.05,
		CorruptProb:      0.05,
	})
	clock := &stepClock{now: start}
	caller := &Caller{
		Dialer: fn,
		// Tight real-time backoff: the virtual clock cannot pace retries
		// because nothing advances it while an RPC is in flight.
		Retry:      RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		JitterSeed: seed + 1,
	}
	if binary {
		pool := &Pool{Dialer: fn}
		defer pool.Close()
		caller.Pool = pool
	}

	const machines = 5
	gws := make([]*Gateway, machines)
	for i := 0; i < machines; i++ {
		id := fmt.Sprintf("m%d", i+1)
		sm, err := NewStateManager(id, period, avail.DefaultConfig(), clock, historyMachine(id, 11, -1), 0)
		if err != nil {
			t.Fatal(err)
		}
		gw, err := NewGateway(id, avail.DefaultConfig(), period, clock, sm)
		if err != nil {
			t.Fatal(err)
		}
		gw.Record(start, sample(5, 400))
		gws[i] = gw
	}
	sched := &Scheduler{
		Breakers: NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour}, clock),
	}
	for i, gw := range gws {
		srv, err := gw.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		id := fmt.Sprintf("m%d", i+1)
		fn.Alias(srv.Addr(), id)
		sched.Candidates = append(sched.Candidates, Candidate{
			MachineID: id,
			API:       RemoteGateway{Addr: srv.Addr(), Timeout: 2 * time.Second, Caller: caller},
		})
	}

	const (
		partitionStep = 8
		crashStep     = 16
		healStep      = 24
	)
	clock.hook = func(step int, now time.Time) {
		switch step {
		case partitionStep:
			fn.Partition("m1")
		case healStep:
			fn.Heal("m1")
		}
		for i, gw := range gws {
			s := sample(5, 400)
			if i == 1 && step >= crashStep {
				s = trace.Sample{Up: false}
			}
			gw.Record(now, s)
		}
	}

	sv := &Supervisor{
		Sched:            sched,
		Clock:            clock,
		PollInterval:     period,
		UnreachableGrace: 3 * period,
	}
	run, err := sv.Run(context.Background(), SubmitReq{Name: "chaos-job", WorkSeconds: 300, MemMB: 50})
	return chaosResult{
		run:        run,
		err:        err,
		trace:      fn.Trace(),
		dialFails:  fn.DialFailures(),
		transients: run.TransientErrors,
	}
}

// TestChaosJobSurvivesPartitionsAndCrashes is the acceptance test for the
// fault-tolerance stack: under sustained dial failures, stream faults, a
// network partition and a machine revocation, the supervised job still
// completes — by migrating twice — and the entire failure schedule is
// byte-deterministic: a second run with the same seed reproduces the same
// fault trace and the same placements.
func TestChaosJobSurvivesPartitionsAndCrashes(t *testing.T) {
	const seed = 7
	a := runChaosOnce(t, seed, false)
	if a.err != nil {
		t.Fatalf("chaos run failed: %v\nplacements: %+v", a.err, a.run.Placements)
	}
	if !a.run.Completed() {
		t.Fatalf("job did not complete: final = %+v", a.run.Final)
	}
	if a.run.Migrations != 2 || len(a.run.Placements) != 3 {
		t.Fatalf("migrations = %d, placements = %+v; want 2 migrations over 3 placements",
			a.run.Migrations, a.run.Placements)
	}
	p := a.run.Placements
	if p[0].MachineID != "m1" || p[0].Outcome != "killed" || !strings.Contains(p[0].Reason, "unreachable") {
		t.Fatalf("placement 0 = %+v, want URR kill on partitioned m1", p[0])
	}
	if p[1].MachineID != "m2" || p[1].Outcome != "killed" || !strings.Contains(p[1].Reason, "S5") {
		t.Fatalf("placement 1 = %+v, want S5 revocation kill on m2", p[1])
	}
	if p[2].MachineID != "m3" || p[2].Outcome != "completed" {
		t.Fatalf("placement 2 = %+v, want completion on m3", p[2])
	}
	// The run resumed from checkpoints: the final machine reported full
	// work done even though it only executed the tail.
	if a.run.Final.ProgressSeconds != a.run.Final.WorkSeconds {
		t.Fatalf("final progress = %v/%v", a.run.Final.ProgressSeconds, a.run.Final.WorkSeconds)
	}
	// The network actually hurt: injected dial failures beyond the
	// partition refusals alone, and at least the two scheduled partition
	// events in the trace.
	if a.dialFails < 10 {
		t.Fatalf("only %d injected dial failures; the fault layer barely fired", a.dialFails)
	}
	joined := strings.Join(a.trace, "\n")
	if !strings.Contains(joined, "partition m1") || !strings.Contains(joined, "heal m1") {
		t.Fatalf("trace missing partition lifecycle:\n%s", joined)
	}
	if !strings.Contains(joined, "refused") {
		t.Fatalf("trace has no random dial refusals:\n%s", joined)
	}
	// URR grace: the two polls inside the grace window were forgiven
	// before the third declared the machine gone.
	if a.transients < 2 {
		t.Fatalf("TransientErrors = %d, want >= 2 (grace-window forgiveness)", a.transients)
	}

	// Determinism: an identical seed reproduces the identical run.
	b := runChaosOnce(t, seed, false)
	if b.err != nil {
		t.Fatalf("second chaos run failed: %v", b.err)
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("fault traces differ between identical seeds:\n--- run A ---\n%s\n--- run B ---\n%s",
			joined, strings.Join(b.trace, "\n"))
	}
	if !reflect.DeepEqual(a.run.Placements, b.run.Placements) {
		t.Fatalf("placements differ: %+v vs %+v", a.run.Placements, b.run.Placements)
	}
	if a.dialFails != b.dialFails || a.transients != b.transients {
		t.Fatalf("fault counts differ: dials %d/%d, transients %d/%d",
			a.dialFails, b.dialFails, a.transients, b.transients)
	}
	// A different seed draws a different schedule (sanity check that the
	// seed is actually load-bearing).
	c := runChaosOnce(t, seed+1, false)
	if c.err == nil && reflect.DeepEqual(a.trace, c.trace) {
		t.Fatal("different seeds produced identical fault traces")
	}
}

// TestChaosJobSurvivesBinaryTransport runs the same scripted outage timeline
// over pooled multiplexed binary connections: the partition must sever the
// live pooled connection to m1 (not just block fresh dials), the job must
// still migrate to completion, and the whole run — fault trace and
// placements — must stay byte-deterministic under a fixed seed.
func TestChaosJobSurvivesBinaryTransport(t *testing.T) {
	const seed = 7
	a := runChaosOnce(t, seed, true)
	if a.err != nil {
		t.Fatalf("binary chaos run failed: %v\nplacements: %+v", a.err, a.run.Placements)
	}
	if !a.run.Completed() {
		t.Fatalf("job did not complete: final = %+v", a.run.Final)
	}
	if a.run.Migrations < 1 {
		t.Fatalf("job never migrated under partition+revocation: placements = %+v", a.run.Placements)
	}
	p := a.run.Placements
	if p[0].MachineID != "m1" || p[0].Outcome != "killed" {
		t.Fatalf("placement 0 = %+v, want kill on partitioned m1", p[0])
	}
	if last := p[len(p)-1]; last.Outcome != "completed" {
		t.Fatalf("final placement = %+v, want completion", last)
	}
	if a.run.Final.ProgressSeconds != a.run.Final.WorkSeconds {
		t.Fatalf("final progress = %v/%v", a.run.Final.ProgressSeconds, a.run.Final.WorkSeconds)
	}
	joined := strings.Join(a.trace, "\n")
	if !strings.Contains(joined, "partition m1") || !strings.Contains(joined, "heal m1") {
		t.Fatalf("trace missing partition lifecycle:\n%s", joined)
	}

	// Determinism: an identical seed reproduces the identical run over the
	// pooled transport too.
	b := runChaosOnce(t, seed, true)
	if b.err != nil {
		t.Fatalf("second binary chaos run failed: %v", b.err)
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("fault traces differ between identical seeds:\n--- run A ---\n%s\n--- run B ---\n%s",
			joined, strings.Join(b.trace, "\n"))
	}
	if !reflect.DeepEqual(a.run.Placements, b.run.Placements) {
		t.Fatalf("placements differ: %+v vs %+v", a.run.Placements, b.run.Placements)
	}
	if a.dialFails != b.dialFails || a.transients != b.transients {
		t.Fatalf("fault counts differ: dials %d/%d, transients %d/%d",
			a.dialFails, b.dialFails, a.transients, b.transients)
	}
}
