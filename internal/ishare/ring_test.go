package ishare

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("machine-%04d", i)
	}
	return keys
}

func buildRing(t *testing.T, vnodes int, ids ...string) *Ring {
	t.Helper()
	r := NewRing(vnodes)
	for _, id := range ids {
		if err := r.Add(Peer{ID: id, Addr: id + ":0"}); err != nil {
			t.Fatalf("Add(%s): %v", id, err)
		}
	}
	return r
}

// TestRingBalance checks the ISSUE's balance target: across 1000 keys at 64
// vnodes, every peer's share stays within ±15% of fair share, for several
// fleet sizes.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(1000)
	cases := []struct {
		name  string
		peers []string
	}{
		{"3-peers", []string{"gw-a", "gw-b", "gw-c"}},
		{"4-peers", []string{"gw-a", "gw-b", "gw-c", "gw-d"}},
		{"5-peers", []string{"fed1", "fed2", "fed3", "fed4", "fed5"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := buildRing(t, 64, tc.peers...)
			counts := make(map[string]int)
			for _, k := range keys {
				owner, ok := r.Owner(k)
				if !ok {
					t.Fatalf("Owner(%s): empty ring", k)
				}
				counts[owner.ID]++
			}
			fair := float64(len(keys)) / float64(len(tc.peers))
			for _, id := range tc.peers {
				got := float64(counts[id])
				dev := (got - fair) / fair
				t.Logf("%s: %d keys (%+.1f%% of fair share %.0f)", id, counts[id], dev*100, fair)
				if dev > 0.15 || dev < -0.15 {
					t.Errorf("%s owns %d keys, outside ±15%% of fair share %.0f", id, counts[id], fair)
				}
			}
		})
	}
}

// TestRingJoinMovesKeysOnlyToJoiner checks the consistent-hashing contract:
// when a peer joins, the only keys that change owner are those that move TO
// the joiner, and roughly 1/N of the keyspace moves.
func TestRingJoinMovesKeysOnlyToJoiner(t *testing.T) {
	keys := ringKeys(1000)
	before := buildRing(t, 64, "gw-a", "gw-b", "gw-c", "gw-d")
	after := buildRing(t, 64, "gw-a", "gw-b", "gw-c", "gw-d", "gw-e")

	moved := 0
	for _, k := range keys {
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob.ID == oa.ID {
			continue
		}
		moved++
		if oa.ID != "gw-e" {
			t.Errorf("key %s moved %s -> %s, not to the joining peer", k, ob.ID, oa.ID)
		}
	}
	// Fair share for the joiner is 1000/5 = 200; allow 2x slack but insist
	// the vast majority of keys did not move.
	if moved == 0 || moved > 400 {
		t.Errorf("join moved %d/1000 keys, want (0, 400]", moved)
	}
	t.Logf("join moved %d/1000 keys", moved)
}

// TestRingLeaveMovesKeysOnlyFromLeaver checks the mirror property: when a
// peer leaves, only the keys it owned change hands.
func TestRingLeaveMovesKeysOnlyFromLeaver(t *testing.T) {
	keys := ringKeys(1000)
	before := buildRing(t, 64, "gw-a", "gw-b", "gw-c", "gw-d", "gw-e")
	after := buildRing(t, 64, "gw-a", "gw-b", "gw-c", "gw-d", "gw-e")
	after.Remove("gw-c")

	moved := 0
	for _, k := range keys {
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob.ID == oa.ID {
			continue
		}
		moved++
		if ob.ID != "gw-c" {
			t.Errorf("key %s moved %s -> %s though %s did not leave", k, ob.ID, oa.ID, ob.ID)
		}
	}
	if moved == 0 || moved > 400 {
		t.Errorf("leave moved %d/1000 keys, want (0, 400]", moved)
	}
	t.Logf("leave moved %d/1000 keys", moved)
}

// TestRingSuccessors checks the replica-set contract used by the
// federation routing layer.
func TestRingSuccessors(t *testing.T) {
	r := buildRing(t, 64, "gw-a", "gw-b", "gw-c")
	for _, k := range ringKeys(50) {
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%s, 3) = %d peers, want 3", k, len(succ))
		}
		owner, _ := r.Owner(k)
		if succ[0].ID != owner.ID {
			t.Errorf("Successors(%s)[0] = %s, want owner %s", k, succ[0].ID, owner.ID)
		}
		seen := map[string]bool{}
		for _, p := range succ {
			if seen[p.ID] {
				t.Errorf("Successors(%s) repeats peer %s", k, p.ID)
			}
			seen[p.ID] = true
		}
	}
	// Asking for more peers than exist returns all of them, once each.
	if got := len(r.Successors("machine-0001", 10)); got != 3 {
		t.Errorf("Successors(n=10) on 3-peer ring = %d, want 3", got)
	}
	if r.Successors("machine-0001", 0) != nil {
		t.Error("Successors(n=0) should be nil")
	}
	if NewRing(0).Successors("x", 2) != nil {
		t.Error("Successors on empty ring should be nil")
	}
}

// TestRingInsertionOrderIrrelevant checks that ownership depends only on
// membership, not on the order peers were added — required for peers that
// each build their ring from a differently-ordered -peers flag.
func TestRingInsertionOrderIrrelevant(t *testing.T) {
	a := buildRing(t, 64, "gw-a", "gw-b", "gw-c")
	b := buildRing(t, 64, "gw-c", "gw-a", "gw-b")
	for _, k := range ringKeys(200) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa.ID != ob.ID {
			t.Fatalf("owner of %s differs by insertion order: %s vs %s", k, oa.ID, ob.ID)
		}
	}
}

// TestRingAddRemoveValidation covers the edge cases around membership
// mutation.
func TestRingAddRemoveValidation(t *testing.T) {
	r := NewRing(0)
	if r.Vnodes() != DefaultVnodes {
		t.Fatalf("Vnodes() = %d, want default %d", r.Vnodes(), DefaultVnodes)
	}
	if err := r.Add(Peer{ID: "", Addr: "x"}); err == nil {
		t.Error("Add without ID should fail")
	}
	if err := r.Add(Peer{ID: "x", Addr: ""}); err == nil {
		t.Error("Add without address should fail")
	}
	if err := r.Add(Peer{ID: "gw-a", Addr: "a:1"}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	// Re-adding refreshes the address without moving keys.
	ownerBefore, _ := r.Owner("machine-1")
	if err := r.Add(Peer{ID: "gw-a", Addr: "a:2"}); err != nil {
		t.Fatalf("re-Add: %v", err)
	}
	ownerAfter, _ := r.Owner("machine-1")
	if ownerAfter.Addr != "a:2" || ownerAfter.ID != ownerBefore.ID {
		t.Errorf("re-Add: owner = %+v, want same ID with refreshed addr", ownerAfter)
	}
	if r.Len() != 1 {
		t.Errorf("Len() = %d, want 1", r.Len())
	}
	r.Remove("nope") // no-op
	r.Remove("gw-a")
	if r.Len() != 0 {
		t.Errorf("Len() after remove = %d, want 0", r.Len())
	}
	if _, ok := r.Owner("machine-1"); ok {
		t.Error("Owner on emptied ring should report false")
	}
}
