package host

import (
	"fmt"
	"time"

	"fgcs/internal/rng"
)

// This file implements the empirical studies of Section 3.2 as runnable
// experiments: E1 (CPU contention with synthetic duty-cycle programs,
// deriving the thresholds Th1 and Th2) and E2 (combined CPU and memory
// contention with SPEC-like guests and a Musbus-like interactive host
// suite, establishing the CPU/memory separation).

// CurvePoint is one point of a reduction-rate curve.
type CurvePoint struct {
	// IsolatedCPU is the host group's isolated CPU usage L_H (percent).
	IsolatedCPU float64
	// Reduction is the mean reduction rate of host CPU usage (fraction).
	Reduction float64
}

// E1Config parameterizes the CPU-contention study.
type E1Config struct {
	// Machine is the simulated testbed machine.
	Machine Machine
	// GroupSizes are the host group sizes to test (paper: 1..5+).
	GroupSizes []int
	// Targets are the isolated host CPU usage levels to sweep (fractions).
	Targets []float64
	// Trials averages each point over this many seeds.
	Trials int
	// Duration is the simulated run length per trial.
	Duration time.Duration
	// SlowdownBound is the "noticeable slowdown" bound (paper: 5%).
	SlowdownBound float64
	// Seed makes the study reproducible.
	Seed uint64
}

// DefaultE1Config returns the paper's study design.
func DefaultE1Config() E1Config {
	return E1Config{
		Machine:       DefaultMachine(),
		GroupSizes:    []int{1, 2, 3, 4, 5, 6},
		Targets:       []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50, 0.55, 0.60, 0.65, 0.70, 0.80, 0.90, 1.0},
		Trials:        5,
		Duration:      15 * time.Minute,
		SlowdownBound: 0.05,
		Seed:          1,
	}
}

// E1Result is the outcome of the CPU-contention study.
type E1Result struct {
	// Curves[nice][size] is the reduction curve for that guest priority
	// and host group size. nice is 0 or 19.
	Curves map[int]map[int][]CurvePoint
	// Th1 is the derived renice threshold (percent of host CPU load).
	Th1 float64
	// Th2 is the derived termination threshold (percent).
	Th2 float64
}

// RunE1 executes the CPU-contention study: for each guest priority, host
// group size and isolated-load target it measures the reduction rate of host
// CPU usage, then derives Th1 and Th2 as the highest load levels at which
// the slowdown bound still holds (at the guest's default and lowest
// priority, respectively), minimized over group sizes as the paper does.
func RunE1(cfg E1Config) (*E1Result, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("host: E1 needs at least one trial")
	}
	res := &E1Result{Curves: map[int]map[int][]CurvePoint{0: {}, 19: {}}}
	root := rng.New(cfg.Seed)
	for _, nice := range []int{0, 19} {
		for _, size := range cfg.GroupSizes {
			var curve []CurvePoint
			for _, target := range cfg.Targets {
				// Split the group target across `size` processes with
				// randomly distributed per-process loads, as the paper
				// does ("isolated CPU usages of each process randomly
				// distributed").
				sumIso, sumRed := 0.0, 0.0
				for trial := 0; trial < cfg.Trials; trial++ {
					tr := root.SplitN(fmt.Sprintf("e1-%d-%d-%g", nice, size, target), trial)
					hosts := randomGroup(tr, size, target)
					iso, _, red, err := Reduction(cfg.Machine, hosts, Guest{Nice: nice, MemMB: 50}, cfg.Duration, tr.Uint64())
					if err != nil {
						return nil, err
					}
					sumIso += iso
					sumRed += red
				}
				curve = append(curve, CurvePoint{
					IsolatedCPU: sumIso / float64(cfg.Trials),
					Reduction:   sumRed / float64(cfg.Trials),
				})
			}
			res.Curves[nice][size] = curve
		}
	}
	res.Th1 = deriveThreshold(res.Curves[0], cfg.SlowdownBound)
	res.Th2 = deriveThreshold(res.Curves[19], cfg.SlowdownBound)
	return res, nil
}

// randomGroup builds a host group of the given size whose total isolated
// usage is close to target (each process's load randomly distributed, the
// total clipped by saturation naturally).
func randomGroup(r *rng.Stream, size int, target float64) []Proc {
	hosts := make([]Proc, size)
	// Random split of the target across processes.
	weights := make([]float64, size)
	sum := 0.0
	for i := range weights {
		weights[i] = r.Uniform(0.5, 1.5)
		sum += weights[i]
	}
	for i := range hosts {
		l := target
		if size > 1 {
			// Per-process share of the group's target, randomly skewed.
			l = target * weights[i] / sum
		}
		if l > 1 {
			l = 1
		}
		if l < 0.02 {
			l = 0.02
		}
		hosts[i] = Proc{Name: fmt.Sprintf("h%d", i), IsolatedCPU: l, MemMB: 30}
	}
	return hosts
}

// deriveThreshold finds, for each group size, the highest isolated load
// whose reduction stays within the bound with no higher load under the
// bound, then returns the minimum across sizes (the paper picks thresholds
// "according to the lowest values of L_H among the different host group
// sizes", typically size 1).
func deriveThreshold(curves map[int][]CurvePoint, bound float64) float64 {
	th := 100.0
	for _, curve := range curves {
		// Highest L before the first bound crossing.
		safe := 0.0
		for _, pt := range curve {
			if pt.Reduction > bound {
				break
			}
			safe = pt.IsolatedCPU
		}
		if safe < th {
			th = safe
		}
	}
	return th
}

// ---------------------------------------------------------------- E2 ----

// SpecGuest describes a SPEC-CPU2000-like guest application: CPU-bound with
// a working set between 29 and 193 MB (the paper's range).
type SpecGuest struct {
	Name  string
	MemMB float64
}

// SpecSuite returns guests with the paper's working-set range.
func SpecSuite() []SpecGuest {
	return []SpecGuest{
		{Name: "gzip-like", MemMB: 29},
		{Name: "vpr-like", MemMB: 50},
		{Name: "mcf-like", MemMB: 95},
		{Name: "parser-like", MemMB: 130},
		{Name: "swim-like", MemMB: 193},
	}
}

// MusbusWorkload is a Musbus-like interactive host workload: editing, Unix
// command-line utilities, and compiler invocations with a given CPU and
// memory footprint.
type MusbusWorkload struct {
	Name  string
	CPU   float64 // isolated CPU usage fraction
	MemMB float64
}

// MusbusSuite returns host workloads spanning the paper's ranges: CPU 8-67%,
// memory 53-213 MB.
func MusbusSuite() []MusbusWorkload {
	return []MusbusWorkload{
		{Name: "edit-small", CPU: 0.08, MemMB: 53},
		{Name: "edit-large", CPU: 0.15, MemMB: 90},
		{Name: "utils", CPU: 0.28, MemMB: 120},
		{Name: "compile-small", CPU: 0.45, MemMB: 160},
		{Name: "compile-large", CPU: 0.67, MemMB: 213},
	}
}

// E2Cell is one (guest, host workload, priority) measurement.
type E2Cell struct {
	Guest     string
	Host      string
	GuestNice int
	// HostIsolatedCPU and Reduction as in E1.
	HostIsolatedCPU float64
	Reduction       float64
	// Thrashing reports whether the combined working sets exceeded
	// physical memory.
	Thrashing bool
}

// E2Config parameterizes the memory-contention study.
type E2Config struct {
	Machine  Machine
	Duration time.Duration
	Seed     uint64
}

// DefaultE2Config mirrors the paper's 384 MB Solaris machine.
func DefaultE2Config() E2Config {
	return E2Config{Machine: DefaultMachine(), Duration: 15 * time.Minute, Seed: 1}
}

// RunE2 crosses the SPEC-like guest suite with the Musbus-like host suite at
// both guest priorities and reports the reduction and thrashing for each
// combination. The paper's two observations should hold: (1) thrashing
// occurs exactly when working sets exceed physical memory, independent of
// priority; (2) absent thrashing, reduction depends only on host CPU load
// with the same thresholds as E1.
func RunE2(cfg E2Config) ([]E2Cell, error) {
	var out []E2Cell
	root := rng.New(cfg.Seed)
	for _, g := range SpecSuite() {
		for _, hw := range MusbusSuite() {
			for _, nice := range []int{0, 19} {
				hosts := []Proc{{Name: hw.Name, IsolatedCPU: hw.CPU, MemMB: hw.MemMB}}
				tr := root.Split(g.Name + hw.Name)
				iso, _, red, err := Reduction(cfg.Machine, hosts, Guest{Nice: nice, MemMB: g.MemMB}, cfg.Duration, tr.Uint64())
				if err != nil {
					return nil, err
				}
				thrash := hw.MemMB+g.MemMB+cfg.Machine.KernelMemMB > cfg.Machine.TotalMemMB
				out = append(out, E2Cell{
					Guest:           g.Name,
					Host:            hw.Name,
					GuestNice:       nice,
					HostIsolatedCPU: iso,
					Reduction:       red,
					Thrashing:       thrash,
				})
			}
		}
	}
	return out, nil
}
