package host

import (
	"fmt"
	"math"
	"testing"
	"time"
)

const simDur = 10 * time.Minute

func TestSimulateErrors(t *testing.T) {
	m := DefaultMachine()
	ok := []Proc{{Name: "h", IsolatedCPU: 0.5, MemMB: 10}}
	if _, err := Simulate(Machine{Tick: 0}, ok, nil, simDur, 1); err == nil {
		t.Fatal("zero tick accepted")
	}
	if _, err := Simulate(m, ok, nil, time.Millisecond, 1); err == nil {
		t.Fatal("sub-tick duration accepted")
	}
	for _, bad := range []Proc{
		{Name: "x", IsolatedCPU: 0},
		{Name: "x", IsolatedCPU: 1.5},
		{Name: "x", IsolatedCPU: 0.5, Nice: -1},
		{Name: "x", IsolatedCPU: 0.5, Nice: 20},
	} {
		if _, err := Simulate(m, []Proc{bad}, nil, simDur, 1); err == nil {
			t.Fatalf("invalid proc %+v accepted", bad)
		}
	}
	if _, err := Simulate(m, ok, &Guest{Nice: 25}, simDur, 1); err == nil {
		t.Fatal("invalid guest nice accepted")
	}
}

func TestIsolatedRunHitsTarget(t *testing.T) {
	m := DefaultMachine()
	for _, l := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		res, err := Simulate(m, []Proc{{Name: "h", IsolatedCPU: l, MemMB: 20}}, nil, simDur, 3)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.HostCPU-100*l) > 3 {
			t.Fatalf("isolated usage at target %v = %v%%", l, res.HostCPU)
		}
		if res.GuestCPU != 0 {
			t.Fatal("guest CPU reported without a guest")
		}
	}
}

func TestDeterminism(t *testing.T) {
	m := DefaultMachine()
	hosts := []Proc{{Name: "h", IsolatedCPU: 0.4, MemMB: 20}}
	g := &Guest{Nice: 19, MemMB: 40}
	a, err := Simulate(m, hosts, g, simDur, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(m, hosts, g, simDur, 99)
	if a.HostCPU != b.HostCPU || a.GuestCPU != b.GuestCPU {
		t.Fatal("same seed produced different results")
	}
}

func TestGuestSoaksIdleCycles(t *testing.T) {
	m := DefaultMachine()
	hosts := []Proc{{Name: "h", IsolatedCPU: 0.3, MemMB: 20}}
	res, err := Simulate(m, hosts, &Guest{Nice: 19, MemMB: 40}, simDur, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.GuestCPU < 55 {
		t.Fatalf("guest CPU = %v%%, want most of the idle ~70%%", res.GuestCPU)
	}
}

func TestLowPriorityGuestGentler(t *testing.T) {
	m := DefaultMachine()
	for _, l := range []float64{0.3, 0.5, 0.7} {
		hosts := []Proc{{Name: "h", IsolatedCPU: l, MemMB: 20}}
		_, _, red0, err := Reduction(m, hosts, Guest{Nice: 0, MemMB: 40}, simDur, 11)
		if err != nil {
			t.Fatal(err)
		}
		_, _, red19, err := Reduction(m, hosts, Guest{Nice: 19, MemMB: 40}, simDur, 11)
		if err != nil {
			t.Fatal(err)
		}
		if red19 >= red0 {
			t.Fatalf("L=%v: renicing did not reduce impact (%v vs %v)", l, red19, red0)
		}
	}
}

func TestReductionGrowsWithLoad(t *testing.T) {
	m := DefaultMachine()
	avg := func(l float64, nice int) float64 {
		sum := 0.0
		const trials = 4
		for s := 0; s < trials; s++ {
			hosts := []Proc{{Name: "h", IsolatedCPU: l, MemMB: 20}}
			_, _, red, err := Reduction(m, hosts, Guest{Nice: nice, MemMB: 40}, simDur, uint64(100+s))
			if err != nil {
				t.Fatal(err)
			}
			sum += red
		}
		return sum / trials
	}
	if lo, hi := avg(0.1, 0), avg(0.8, 0); lo >= hi {
		t.Fatalf("nice-0 reduction not increasing: %v at 10%% vs %v at 80%%", lo, hi)
	}
	if lo, hi := avg(0.2, 19), avg(0.9, 19); lo >= hi {
		t.Fatalf("nice-19 reduction not increasing: %v at 20%% vs %v at 90%%", lo, hi)
	}
}

// TestEmergentThresholds verifies the paper's central empirical claim on the
// simulator: with the 5% slowdown bound, a default-priority guest is safe
// below ~Th1=20% and a lowest-priority guest below ~Th2=60%.
func TestEmergentThresholds(t *testing.T) {
	m := DefaultMachine()
	avg := func(l float64, nice int) float64 {
		sum := 0.0
		const trials = 5
		for s := 0; s < trials; s++ {
			hosts := []Proc{{Name: "h", IsolatedCPU: l, MemMB: 20}}
			_, _, red, err := Reduction(m, hosts, Guest{Nice: nice, MemMB: 40}, 20*time.Minute, uint64(1000+s))
			if err != nil {
				t.Fatal(err)
			}
			sum += red
		}
		return sum / trials
	}
	if red := avg(0.15, 0); red > 0.05 {
		t.Errorf("nice-0 guest at L=15%%: reduction %v > 5%%", red)
	}
	if red := avg(0.30, 0); red < 0.05 {
		t.Errorf("nice-0 guest at L=30%%: reduction %v < 5%% (Th1 should be ~20)", red)
	}
	if red := avg(0.50, 19); red > 0.05 {
		t.Errorf("nice-19 guest at L=50%%: reduction %v > 5%%", red)
	}
	if red := avg(0.70, 19); red < 0.05 {
		t.Errorf("nice-19 guest at L=70%%: reduction %v < 5%% (Th2 should be ~60)", red)
	}
}

func TestThrashing(t *testing.T) {
	m := DefaultMachine() // 384 MB, 50 MB kernel
	hosts := []Proc{{Name: "h", IsolatedCPU: 0.4, MemMB: 200}}
	// 200 + 193 + 50 = 443 > 384: thrash.
	res, err := Simulate(m, hosts, &Guest{Nice: 19, MemMB: 193}, simDur, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Thrashing {
		t.Fatal("thrashing not detected")
	}
	iso, _ := Simulate(m, hosts, nil, simDur, 9)
	if res.HostCPU > iso.HostCPU*0.5 {
		t.Fatalf("thrashing host usage %v not collapsed vs isolated %v", res.HostCPU, iso.HostCPU)
	}
	// Priority does not rescue thrashing (the paper's first E2 observation).
	res0, _ := Simulate(m, hosts, &Guest{Nice: 0, MemMB: 193}, simDur, 9)
	if !res0.Thrashing {
		t.Fatal("nice-0 run must thrash too")
	}
	red19 := (iso.HostCPU - res.HostCPU) / iso.HostCPU
	red0 := (iso.HostCPU - res0.HostCPU) / iso.HostCPU
	if red19 < 0.4 || red0 < 0.4 {
		t.Fatalf("thrashing slowdown should be severe at both priorities: %v, %v", red19, red0)
	}
	// With a small guest there is no thrashing.
	small, _ := Simulate(m, hosts, &Guest{Nice: 19, MemMB: 29}, simDur, 9)
	if small.Thrashing {
		t.Fatal("small guest should not thrash")
	}
}

func TestReductionZeroFloor(t *testing.T) {
	// Reduction must never be negative even when noise favors the
	// contended run.
	m := DefaultMachine()
	hosts := []Proc{{Name: "h", IsolatedCPU: 0.05, MemMB: 20}}
	for s := uint64(0); s < 5; s++ {
		_, _, red, err := Reduction(m, hosts, Guest{Nice: 19, MemMB: 20}, simDur, s)
		if err != nil {
			t.Fatal(err)
		}
		if red < 0 {
			t.Fatalf("negative reduction %v", red)
		}
	}
}

func TestRunE1DerivesPaperThresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("E1 sweep is minutes-long")
	}
	cfg := DefaultE1Config()
	// Trimmed design for test time: the headline sizes and loads.
	cfg.GroupSizes = []int{1, 3}
	cfg.Trials = 3
	cfg.Duration = 10 * time.Minute
	res, err := RunE1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Th1 < 10 || res.Th1 > 30 {
		t.Errorf("Th1 = %v, want ~20", res.Th1)
	}
	if res.Th2 < 45 || res.Th2 > 75 {
		t.Errorf("Th2 = %v, want ~60", res.Th2)
	}
	if res.Th1 >= res.Th2 {
		t.Errorf("Th1 %v must be below Th2 %v", res.Th1, res.Th2)
	}
	for _, nice := range []int{0, 19} {
		for _, size := range cfg.GroupSizes {
			if len(res.Curves[nice][size]) != len(cfg.Targets) {
				t.Fatalf("curve for nice %d size %d incomplete", nice, size)
			}
		}
	}
}

func TestRunE1Errors(t *testing.T) {
	cfg := DefaultE1Config()
	cfg.Trials = 0
	if _, err := RunE1(cfg); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestRunE2Separation(t *testing.T) {
	if testing.Short() {
		t.Skip("E2 sweep is minutes-long")
	}
	cfg := DefaultE2Config()
	cfg.Duration = 8 * time.Minute
	cells, err := RunE2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(SpecSuite())*len(MusbusSuite())*2 {
		t.Fatalf("cell count = %d", len(cells))
	}
	for _, c := range cells {
		wantThrash := memOf(c.Guest)+memOfHost(c.Host)+cfg.Machine.KernelMemMB > cfg.Machine.TotalMemMB
		if c.Thrashing != wantThrash {
			t.Errorf("%s + %s: thrashing = %v, want %v", c.Guest, c.Host, c.Thrashing, wantThrash)
		}
		if c.Thrashing && c.Reduction < 0.3 {
			t.Errorf("%s + %s: thrashing reduction %v suspiciously low", c.Guest, c.Host, c.Reduction)
		}
		// Second observation: without thrashing, a reniced guest against
		// light host load keeps the slowdown small.
		if !c.Thrashing && c.GuestNice == 19 && c.HostIsolatedCPU < 50 && c.Reduction > 0.08 {
			t.Errorf("%s + %s (nice 19, L=%v): reduction %v too high without thrashing",
				c.Guest, c.Host, c.HostIsolatedCPU, c.Reduction)
		}
	}
}

func memOf(guestName string) float64 {
	for _, g := range SpecSuite() {
		if g.Name == guestName {
			return g.MemMB
		}
	}
	panic(fmt.Sprintf("unknown guest %q", guestName))
}

func memOfHost(hostName string) float64 {
	for _, h := range MusbusSuite() {
		if h.Name == hostName {
			return h.MemMB
		}
	}
	panic(fmt.Sprintf("unknown host workload %q", hostName))
}

func TestSuiteRangesMatchPaper(t *testing.T) {
	for _, g := range SpecSuite() {
		if g.MemMB < 29 || g.MemMB > 193 {
			t.Errorf("guest %s working set %v outside the paper's 29-193 MB", g.Name, g.MemMB)
		}
	}
	for _, h := range MusbusSuite() {
		if h.CPU < 0.08 || h.CPU > 0.67 {
			t.Errorf("host workload %s CPU %v outside the paper's 8-67%%", h.Name, h.CPU)
		}
		if h.MemMB < 53 || h.MemMB > 213 {
			t.Errorf("host workload %s memory %v outside the paper's 53-213 MB", h.Name, h.MemMB)
		}
	}
}

func TestPolicyNiceMapping(t *testing.T) {
	if PolicyTwoThreshold.nice(10, 20, 60) != 0 || PolicyTwoThreshold.nice(30, 20, 60) != 19 {
		t.Fatal("two-threshold mapping wrong")
	}
	if PolicyAlwaysLowest.nice(0, 20, 60) != 19 {
		t.Fatal("always-lowest mapping wrong")
	}
	if PolicyGradual.nice(10, 20, 60) != 0 || PolicyGradual.nice(70, 20, 60) != 19 {
		t.Fatal("gradual extremes wrong")
	}
	mid := PolicyGradual.nice(40, 20, 60)
	if mid <= 0 || mid >= 19 {
		t.Fatalf("gradual midpoint = %d, want intermediate", mid)
	}
	for _, p := range []GuestPolicy{PolicyTwoThreshold, PolicyGradual, PolicyAlwaysLowest} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
	if GuestPolicy(9).String() != "GuestPolicy(9)" {
		t.Fatal("unknown policy name wrong")
	}
}

func TestSimulatePolicyValidation(t *testing.T) {
	m := DefaultMachine()
	hosts := []Proc{{Name: "h", IsolatedCPU: 0.5, MemMB: 10}}
	if _, err := SimulatePolicy(Machine{}, hosts, PolicyTwoThreshold, 20, 60, time.Minute, 1); err == nil {
		t.Fatal("zero tick accepted")
	}
	if _, err := SimulatePolicy(m, hosts, PolicyTwoThreshold, 20, 60, time.Millisecond, 1); err == nil {
		t.Fatal("sub-tick duration accepted")
	}
	bad := []Proc{{Name: "h", IsolatedCPU: 0}}
	if _, err := SimulatePolicy(m, bad, PolicyTwoThreshold, 20, 60, time.Minute, 1); err == nil {
		t.Fatal("invalid proc accepted")
	}
	if _, err := RunE1b(m, []float64{0.5}, 0, time.Minute, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

// TestE1bConclusions reproduces Section 3.2.1's policy comparison: the
// gradual policy's intermediate priorities are redundant (its host impact
// matches the two-threshold scheme), so the two thresholds suffice.
func TestE1bConclusions(t *testing.T) {
	if testing.Short() {
		t.Skip("policy sweep is slow")
	}
	rows, err := RunE1b(DefaultMachine(), []float64{0.1, 0.5, 0.9}, 3, 8*time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]E1bRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%v/%.0f", r.Policy, r.IsolatedCPU)] = r
	}
	for _, l := range []string{"10", "50", "90"} {
		two := byKey["two-threshold/"+l]
		grad := byKey["gradual/"+l]
		// Redundancy: gradual buys no reduction improvement beyond noise.
		if diff := grad.Reduction - two.Reduction; diff < -0.02 || diff > 0.02 {
			t.Errorf("L=%s: gradual reduction %v differs from two-threshold %v beyond noise",
				l, grad.Reduction, two.Reduction)
		}
		// And it does not meaningfully change guest throughput either.
		if diff := grad.GuestCPU - two.GuestCPU; diff < -2 || diff > 2 {
			t.Errorf("L=%s: gradual guest CPU %v vs two-threshold %v", l, grad.GuestCPU, two.GuestCPU)
		}
	}
	// The two-threshold scheme runs the guest at default priority under
	// light load and at the lowest priority under heavy load.
	if byKey["two-threshold/10"].MeanNice > 6 {
		t.Errorf("two-threshold mean nice %v at light load, want near 0",
			byKey["two-threshold/10"].MeanNice)
	}
	if byKey["two-threshold/90"].MeanNice < 15 {
		t.Errorf("two-threshold mean nice %v at heavy load, want near 19",
			byKey["two-threshold/90"].MeanNice)
	}
	if byKey["always-lowest/10"].MeanNice != 19 {
		t.Errorf("always-lowest mean nice %v", byKey["always-lowest/10"].MeanNice)
	}
}
