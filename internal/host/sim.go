// Package host simulates resource contention between host processes and a
// guest process on a single time-shared machine, reproducing the empirical
// studies of Section 3.2 that establish the two CPU-load thresholds Th1 and
// Th2 and the CPU/memory-contention separation underlying the five-state
// availability model.
//
// The scheduler model is a simplified Linux 2.6 O(1) scheduler with the two
// mechanisms that matter for the paper's observations:
//
//   - a sleep-average reservoir granting interactive (bursty) tasks a dynamic
//     priority bonus, so that light host workloads preempt even a
//     default-priority guest and suffer <5% slowdown, while heavier ones
//     drain the reservoir and start time-sharing with the guest;
//   - a minimum-timeslice grant for the guest (array-switch anti-starvation),
//     so that even a nice-19 guest consumes a small, bounded share of a busy
//     machine — the reason a second threshold Th2 exists at all.
//
// Host programs are work-conserving compute/sleep cycles (the paper's
// synthetic programs adjust sleep time to hit a target isolated CPU usage),
// so guest interference stretches their cycles and lowers their measured CPU
// usage — exactly the "reduction rate of host CPU usage" metric of the
// paper.
package host

import (
	"fmt"
	"time"

	"fgcs/internal/rng"
)

// Machine describes the simulated hardware.
type Machine struct {
	// TotalMemMB is physical memory (the paper's Solaris testbed: 384 MB).
	TotalMemMB float64
	// KernelMemMB is memory unavailable to processes.
	KernelMemMB float64
	// Tick is the scheduling quantum of the simulation.
	Tick time.Duration
}

// DefaultMachine mirrors the paper's memory-contention testbed.
func DefaultMachine() Machine {
	return Machine{TotalMemMB: 384, KernelMemMB: 50, Tick: 10 * time.Millisecond}
}

// Proc specifies a host process: a compute/sleep cycle calibrated to an
// isolated CPU usage target, as in the paper's synthetic programs.
type Proc struct {
	// Name labels the process in results.
	Name string
	// IsolatedCPU is the target CPU usage fraction (0,1] the process
	// achieves when running alone.
	IsolatedCPU float64
	// MemMB is the resident set size.
	MemMB float64
	// Nice is the Unix nice level (0 = default).
	Nice int
	// BurstMS is the mean compute-burst length in milliseconds; zero
	// selects the default interactive burst length.
	BurstMS float64
}

// Guest specifies the guest process: completely CPU-bound, as the paper's
// guest applications are.
type Guest struct {
	// Nice is the guest priority: 0 (default) or 19 (lowest).
	Nice int
	// MemMB is the guest working-set size.
	MemMB float64
}

// Result reports a contention run.
type Result struct {
	// HostCPU is the total CPU usage of all host processes (percent),
	// the L_H signal the resource monitor observes.
	HostCPU float64
	// PerProc is each host process's CPU usage (percent), aligned with
	// the input slice.
	PerProc []float64
	// GuestCPU is the guest's CPU usage (percent); 0 when no guest runs.
	GuestCPU float64
	// Thrashing reports whether the run spent any time thrashing.
	Thrashing bool
}

// Scheduler model constants (calibrated so the emergent thresholds match the
// paper's Linux testbed values Th1 = 20%, Th2 = 60%; see sim_test.go).
const (
	// reservoirTicks is the sleep-average capacity (1 s at a 10 ms tick,
	// as in the 2.6 kernel).
	reservoirTicks = 100
	// bonusLevels is the dynamic-priority swing (±5 nice levels).
	bonusLevels = 5
	// guestFloorProb is the per-contended-tick probability that the
	// guest's minimum timeslice grant preempts the winning host process.
	guestFloorProb = 0.078
	// thrashFactor is the progress multiplier while the machine thrashes.
	thrashFactor = 0.12
	// defaultBurstMS is the mean compute-burst length of an interactive
	// host task.
	defaultBurstMS = 500
)

type procState struct {
	spec      Proc
	computing bool
	workLeft  float64 // remaining ticks of the current burst
	burstWork float64 // total work of the current burst (for sleep sizing)
	sleepLeft float64 // remaining ticks of the current sleep
	reservoir float64 // sleep-average reservoir in ticks
	usedTicks float64 // accumulated CPU progress
}

// effNice returns the dynamic priority: static nice minus the sleep bonus
// (bonus −5..+5; more sleep → lower effective nice → higher priority).
func (p *procState) effNice() float64 {
	bonus := 2*bonusLevels*(p.reservoir/reservoirTicks) - bonusLevels
	return float64(p.spec.Nice) - bonus
}

// Simulate runs host processes (optionally with a guest) for the given
// duration and returns the measured CPU usages.
func Simulate(m Machine, hosts []Proc, guest *Guest, d time.Duration, seed uint64) (Result, error) {
	if m.Tick <= 0 {
		return Result{}, fmt.Errorf("host: non-positive tick")
	}
	if d < m.Tick {
		return Result{}, fmt.Errorf("host: duration shorter than a tick")
	}
	states := make([]*procState, len(hosts))
	var residentMB float64 = m.KernelMemMB
	for i, h := range hosts {
		if h.IsolatedCPU <= 0 || h.IsolatedCPU > 1 {
			return Result{}, fmt.Errorf("host: process %q isolated CPU %v out of (0,1]", h.Name, h.IsolatedCPU)
		}
		if h.Nice < 0 || h.Nice > 19 {
			return Result{}, fmt.Errorf("host: process %q nice %d out of [0,19]", h.Name, h.Nice)
		}
		if h.BurstMS == 0 {
			h.BurstMS = defaultBurstMS
		}
		states[i] = &procState{spec: h, reservoir: reservoirTicks}
		residentMB += h.MemMB
	}
	guestTicks := 0.0
	if guest != nil {
		if guest.Nice < 0 || guest.Nice > 19 {
			return Result{}, fmt.Errorf("host: guest nice %d out of [0,19]", guest.Nice)
		}
		residentMB += guest.MemMB
	}
	thrashing := residentMB > m.TotalMemMB
	r := rng.New(seed)
	ticks := int(d / m.Tick)
	tickMS := float64(m.Tick) / float64(time.Millisecond)

	// The guest is CPU-bound: its reservoir is empty, so its effective
	// nice sits at the bottom of its band.
	guestEff := 0.0
	if guest != nil {
		guestEff = float64(guest.Nice) + bonusLevels
	}

	for t := 0; t < ticks; t++ {
		// Advance sleep cycles and collect runnable hosts.
		best := 1e18
		var runnable []*procState
		for _, ps := range states {
			if !ps.computing {
				ps.sleepLeft--
				ps.reservoir += 1
				if ps.reservoir > reservoirTicks {
					ps.reservoir = reservoirTicks
				}
				if ps.sleepLeft <= 0 {
					ps.computing = true
					ps.workLeft = r.Exp(ps.spec.BurstMS) / tickMS
					if ps.workLeft < 1 {
						ps.workLeft = 1
					}
				}
			}
			if ps.computing {
				if ps.burstWork == 0 {
					ps.burstWork = ps.workLeft
				}
				e := ps.effNice()
				if e < best {
					best = e
				}
				runnable = append(runnable, ps)
			}
		}
		// Pick the winner among hosts at the best priority level.
		var winner *procState
		if len(runnable) > 0 {
			var top []*procState
			for _, ps := range runnable {
				if ps.effNice() <= best+0.5 { // same O(1) priority slot
					top = append(top, ps)
				}
			}
			winner = top[r.Intn(len(top))]
		}
		guestRuns := false
		switch {
		case guest == nil:
			// no guest
		case winner == nil:
			guestRuns = true // idle CPU: the guest soaks it up
		case guestEff < best-0.5:
			guestRuns = true // guest strictly higher priority
		case guestEff <= best+0.5:
			// Same priority slot: round-robin share.
			guestRuns = r.Intn(len(runnable)+1) == 0
		default:
			// Host wins on priority; the guest still receives its
			// minimum timeslice grant occasionally.
			guestRuns = r.Bool(guestFloorProb)
		}
		progress := 1.0
		if thrashing {
			progress = thrashFactor
		}
		if guestRuns {
			guestTicks += progress
			continue
		}
		if winner != nil {
			winner.usedTicks += progress
			winner.workLeft -= progress
			winner.reservoir -= 1
			if winner.reservoir < 0 {
				winner.reservoir = 0
			}
			if winner.workLeft <= 0 {
				winner.computing = false
				// Sleep long enough to hit the isolated CPU target:
				// S = W * (1/L - 1) with W the burst just finished.
				winner.sleepLeft = winner.burstWork * (1/winner.spec.IsolatedCPU - 1)
				winner.burstWork = 0
				if winner.sleepLeft < 1 {
					winner.sleepLeft = 1
				}
			}
		}
	}

	res := Result{PerProc: make([]float64, len(states)), Thrashing: thrashing}
	total := float64(ticks)
	for i, ps := range states {
		res.PerProc[i] = 100 * ps.usedTicks / total
		res.HostCPU += res.PerProc[i]
	}
	res.GuestCPU = 100 * guestTicks / total
	return res, nil
}

// Reduction measures the paper's metric: the reduction rate of host CPU
// usage caused by running a guest alongside the host group.
//
//	reduction = (isolated - contended) / isolated
//
// Both runs use the same seed so the host workload realizations match.
func Reduction(m Machine, hosts []Proc, guest Guest, d time.Duration, seed uint64) (isolated, contended, reduction float64, err error) {
	iso, err := Simulate(m, hosts, nil, d, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	con, err := Simulate(m, hosts, &guest, d, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	if iso.HostCPU <= 0 {
		return iso.HostCPU, con.HostCPU, 0, nil
	}
	red := (iso.HostCPU - con.HostCPU) / iso.HostCPU
	if red < 0 {
		red = 0
	}
	return iso.HostCPU, con.HostCPU, red, nil
}
