package host

import (
	"fmt"
	"time"

	"fgcs/internal/rng"
)

// GuestPolicy is a strategy for controlling the guest process's priority in
// response to the observed host load — the design space of Section 3.2.1.
// The paper compares the two-threshold scheme it adopts against two
// alternatives used by practical FGCS systems and concludes the thresholds
// are neither redundant nor overly conservative.
type GuestPolicy int

const (
	// PolicyTwoThreshold is the paper's scheme: default priority below
	// Th1, lowest priority above it (termination above Th2 is handled by
	// the gateway, not the priority policy).
	PolicyTwoThreshold GuestPolicy = iota
	// PolicyGradual decreases the guest priority stepwise from 0 to 19 as
	// the host load grows between Th1 and Th2 — the "fine-grained values"
	// alternative.
	PolicyGradual
	// PolicyAlwaysLowest pins the guest at nice 19 from the start (the
	// approach of [7] in the paper).
	PolicyAlwaysLowest
)

// String names the policy.
func (p GuestPolicy) String() string {
	switch p {
	case PolicyTwoThreshold:
		return "two-threshold"
	case PolicyGradual:
		return "gradual"
	case PolicyAlwaysLowest:
		return "always-lowest"
	}
	return fmt.Sprintf("GuestPolicy(%d)", int(p))
}

// nice maps the observed host load (percent) to a guest nice level.
func (p GuestPolicy) nice(loadPct, th1, th2 float64) int {
	switch p {
	case PolicyAlwaysLowest:
		return 19
	case PolicyGradual:
		switch {
		case loadPct < th1:
			return 0
		case loadPct >= th2:
			return 19
		default:
			n := int(19 * (loadPct - th1) / (th2 - th1))
			if n < 0 {
				n = 0
			}
			if n > 19 {
				n = 19
			}
			return n
		}
	default: // PolicyTwoThreshold
		if loadPct < th1 {
			return 0
		}
		return 19
	}
}

// PolicyResult reports one policy-controlled contention run.
type PolicyResult struct {
	Policy GuestPolicy
	// HostCPU and GuestCPU as in Result.
	HostCPU, GuestCPU float64
	// Reduction is the host slowdown vs. the isolated run.
	Reduction float64
	// MeanNice is the guest's time-averaged nice level.
	MeanNice float64
}

// SimulatePolicy runs the contention simulation with the guest's priority
// adjusted dynamically by the policy from a 6-second moving observation of
// the host load — the same signal the resource monitor samples.
func SimulatePolicy(m Machine, hosts []Proc, policy GuestPolicy, th1, th2 float64, d time.Duration, seed uint64) (PolicyResult, error) {
	if m.Tick <= 0 {
		return PolicyResult{}, fmt.Errorf("host: non-positive tick")
	}
	if d < m.Tick {
		return PolicyResult{}, fmt.Errorf("host: duration shorter than a tick")
	}
	states := make([]*procState, len(hosts))
	for i, h := range hosts {
		if h.IsolatedCPU <= 0 || h.IsolatedCPU > 1 {
			return PolicyResult{}, fmt.Errorf("host: process %q isolated CPU %v out of (0,1]", h.Name, h.IsolatedCPU)
		}
		if h.BurstMS == 0 {
			h.BurstMS = defaultBurstMS
		}
		states[i] = &procState{spec: h, reservoir: reservoirTicks}
	}
	r := rng.New(seed)
	ticks := int(d / m.Tick)
	tickMS := float64(m.Tick) / float64(time.Millisecond)
	obsWindow := int(6 * 1000 / tickMS) // 6 s of ticks
	if obsWindow < 1 {
		obsWindow = 1
	}

	guestTicks := 0.0
	hostBusy := 0 // host ticks within the current observation window
	obsAge := 0
	loadPct := 0.0
	niceSum := 0.0
	guestNice := policy.nice(0, th1, th2)

	for t := 0; t < ticks; t++ {
		best := 1e18
		var runnable []*procState
		for _, ps := range states {
			if !ps.computing {
				ps.sleepLeft--
				ps.reservoir += 1
				if ps.reservoir > reservoirTicks {
					ps.reservoir = reservoirTicks
				}
				if ps.sleepLeft <= 0 {
					ps.computing = true
					ps.workLeft = r.Exp(ps.spec.BurstMS) / tickMS
					if ps.workLeft < 1 {
						ps.workLeft = 1
					}
				}
			}
			if ps.computing {
				if ps.burstWork == 0 {
					ps.burstWork = ps.workLeft
				}
				if e := ps.effNice(); e < best {
					best = e
				}
				runnable = append(runnable, ps)
			}
		}
		var winner *procState
		if len(runnable) > 0 {
			var top []*procState
			for _, ps := range runnable {
				if ps.effNice() <= best+0.5 {
					top = append(top, ps)
				}
			}
			winner = top[r.Intn(len(top))]
		}
		guestEff := float64(guestNice) + bonusLevels
		guestRuns := false
		switch {
		case winner == nil:
			guestRuns = true
		case guestEff < best-0.5:
			guestRuns = true
		case guestEff <= best+0.5:
			guestRuns = r.Intn(len(runnable)+1) == 0
		default:
			guestRuns = r.Bool(guestFloorProb)
		}
		if guestRuns {
			guestTicks++
		} else if winner != nil {
			winner.usedTicks++
			winner.workLeft--
			winner.reservoir--
			if winner.reservoir < 0 {
				winner.reservoir = 0
			}
			hostBusy++
			if winner.workLeft <= 0 {
				winner.computing = false
				winner.sleepLeft = winner.burstWork * (1/winner.spec.IsolatedCPU - 1)
				winner.burstWork = 0
				if winner.sleepLeft < 1 {
					winner.sleepLeft = 1
				}
			}
		}
		niceSum += float64(guestNice)
		obsAge++
		if obsAge >= obsWindow {
			// The monitor publishes a fresh load reading; the policy
			// reacts, as the gateway renices the guest.
			loadPct = 100 * float64(hostBusy) / float64(obsWindow)
			guestNice = policy.nice(loadPct, th1, th2)
			hostBusy = 0
			obsAge = 0
		}
	}

	res := PolicyResult{Policy: policy, MeanNice: niceSum / float64(ticks)}
	total := float64(ticks)
	for _, ps := range states {
		res.HostCPU += 100 * ps.usedTicks / total
	}
	res.GuestCPU = 100 * guestTicks / total
	iso, err := Simulate(m, hosts, nil, d, seed)
	if err != nil {
		return PolicyResult{}, err
	}
	if iso.HostCPU > 0 {
		res.Reduction = (iso.HostCPU - res.HostCPU) / iso.HostCPU
		if res.Reduction < 0 {
			res.Reduction = 0
		}
	}
	return res, nil
}

// E1bRow is one (policy, load level) cell of the alternatives study.
type E1bRow struct {
	Policy      GuestPolicy
	IsolatedCPU float64
	Reduction   float64
	GuestCPU    float64
	MeanNice    float64
}

// RunE1b compares the three guest-priority policies across host load levels,
// reproducing the Section 3.2.1 conclusion: the intermediate priorities of
// the gradual policy behave like the lowest priority (redundant), and
// pinning the lowest priority forfeits guest throughput the two-threshold
// scheme captures under light host load.
func RunE1b(m Machine, targets []float64, trials int, d time.Duration, seed uint64) ([]E1bRow, error) {
	if trials < 1 {
		return nil, fmt.Errorf("host: E1b needs at least one trial")
	}
	root := rng.New(seed)
	var rows []E1bRow
	for _, policy := range []GuestPolicy{PolicyTwoThreshold, PolicyGradual, PolicyAlwaysLowest} {
		for _, target := range targets {
			var sumIso, sumRed, sumGuest, sumNice float64
			for trial := 0; trial < trials; trial++ {
				tr := root.SplitN(fmt.Sprintf("e1b-%d-%g", policy, target), trial)
				hosts := []Proc{{Name: "h", IsolatedCPU: target, MemMB: 40}}
				res, err := SimulatePolicy(m, hosts, policy, 20, 60, d, tr.Uint64())
				if err != nil {
					return nil, err
				}
				sumIso += target * 100
				sumRed += res.Reduction
				sumGuest += res.GuestCPU
				sumNice += res.MeanNice
			}
			rows = append(rows, E1bRow{
				Policy:      policy,
				IsolatedCPU: sumIso / float64(trials),
				Reduction:   sumRed / float64(trials),
				GuestCPU:    sumGuest / float64(trials),
				MeanNice:    sumNice / float64(trials),
			})
		}
	}
	return rows, nil
}
