package timeseries

import (
	"math"
	"testing"
	"testing/quick"

	"fgcs/internal/rng"
	"fgcs/internal/stats"
)

func constant(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestNames(t *testing.T) {
	cases := map[Fitter]string{
		AR{P: 8}:         "AR(8)",
		BM{P: 8}:         "BM(8)",
		MA{Q: 8}:         "MA(8)",
		ARMA{P: 8, Q: 8}: "ARMA(8,8)",
		Last{}:           "LAST",
	}
	for f, want := range cases {
		if f.Name() != want {
			t.Errorf("Name = %q, want %q", f.Name(), want)
		}
	}
}

func TestEmptySeriesRejected(t *testing.T) {
	for _, f := range ReferenceSuite() {
		if _, err := f.Fit(nil); err == nil {
			t.Errorf("%s accepted an empty series", f.Name())
		}
	}
}

func TestInvalidOrdersRejected(t *testing.T) {
	series := []float64{1, 2, 3}
	for _, f := range []Fitter{AR{P: 0}, BM{P: 0}, MA{Q: 0}, ARMA{P: 0, Q: 1}, ARMA{P: 1, Q: 0}} {
		if _, err := f.Fit(series); err == nil {
			t.Errorf("%T with invalid order accepted", f)
		}
	}
}

func TestLastForecast(t *testing.T) {
	m, err := Last{}.Fit([]float64{3, 9, 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Forecast(5) {
		if v != 42 {
			t.Fatalf("LAST forecast = %v, want 42", v)
		}
	}
}

func TestBMForecast(t *testing.T) {
	m, err := BM{P: 3}.Fit([]float64{100, 100, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Forecast(4) {
		if v != 2 {
			t.Fatalf("BM(3) forecast = %v, want mean of last 3 = 2", v)
		}
	}
	// Window longer than series: use everything.
	m, _ = BM{P: 50}.Fit([]float64{2, 4})
	if got := m.Forecast(1)[0]; got != 3 {
		t.Fatalf("BM long window = %v, want 3", got)
	}
}

// All models must forecast a constant series as (approximately) that
// constant.
func TestConstantSeriesProperty(t *testing.T) {
	series := constant(37.5, 200)
	for _, f := range ReferenceSuite() {
		m, err := f.Fit(series)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		for i, v := range m.Forecast(20) {
			if math.Abs(v-37.5) > 1e-6 {
				t.Fatalf("%s forecast[%d] = %v on a constant series", f.Name(), i, v)
			}
		}
	}
}

func TestARRecoversAR1Process(t *testing.T) {
	r := rng.New(11)
	const phi = 0.85
	series := make([]float64, 5000)
	for i := 1; i < len(series); i++ {
		series[i] = phi*series[i-1] + r.Normal(0, 1)
	}
	m, err := AR{P: 1}.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	am, ok := m.(*arModel)
	if !ok {
		t.Fatalf("AR fit returned %T", m)
	}
	if math.Abs(am.coeffs[0]-phi) > 0.05 {
		t.Fatalf("AR(1) coefficient = %v, want ~%v", am.coeffs[0], phi)
	}
	// Multi-step forecasts must decay geometrically toward the mean.
	f := m.Forecast(50)
	last := series[len(series)-1] - am.mean
	for s := 0; s < 50; s++ {
		want := am.mean + last*math.Pow(am.coeffs[0], float64(s+1))
		if math.Abs(f[s]-want) > 1e-9 {
			t.Fatalf("step %d forecast = %v, want %v", s, f[s], want)
		}
	}
}

func TestARForecastConvergesToMean(t *testing.T) {
	r := rng.New(13)
	series := make([]float64, 2000)
	for i := 1; i < len(series); i++ {
		series[i] = 0.6*series[i-1] + r.Normal(0, 1)
	}
	m, _ := AR{P: 4}.Fit(series)
	f := m.Forecast(500)
	mean := stats.Mean(series)
	if math.Abs(f[499]-mean) > 0.1 {
		t.Fatalf("long-horizon AR forecast %v did not converge to mean %v", f[499], mean)
	}
}

func TestMAOneStepBeatsMeanOnMA1Process(t *testing.T) {
	// x[t] = e[t] + 0.8 e[t-1]. The MA(1) one-step forecast should have
	// lower error than predicting the mean.
	r := rng.New(17)
	const theta = 0.8
	n := 4000
	e := make([]float64, n+1)
	for i := range e {
		e[i] = r.Normal(0, 1)
	}
	series := make([]float64, n)
	for i := 0; i < n; i++ {
		series[i] = e[i+1] + theta*e[i]
	}
	var errMA, errMean float64
	count := 0
	for cut := n / 2; cut < n-1; cut += 10 {
		m, err := MA{Q: 1}.Fit(series[:cut])
		if err != nil {
			t.Fatal(err)
		}
		pred := m.Forecast(1)[0]
		actual := series[cut]
		errMA += (pred - actual) * (pred - actual)
		mean := stats.Mean(series[:cut])
		errMean += (mean - actual) * (mean - actual)
		count++
	}
	if errMA >= errMean {
		t.Fatalf("MA(1) one-step MSE %v not better than mean MSE %v", errMA/float64(count), errMean/float64(count))
	}
}

func TestMAForecastBeyondOrderIsMean(t *testing.T) {
	r := rng.New(19)
	series := make([]float64, 500)
	for i := range series {
		series[i] = 50 + r.Normal(0, 5)
	}
	m, err := MA{Q: 3}.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Forecast(10)
	mean := stats.Mean(series)
	for s := 3; s < 10; s++ {
		if math.Abs(f[s]-mean) > 1e-9 {
			t.Fatalf("MA forecast beyond order at step %d = %v, want mean %v", s, f[s], mean)
		}
	}
}

func TestARMARecoversARProcess(t *testing.T) {
	// A pure AR(1) process should be fit acceptably by ARMA(1,1).
	r := rng.New(23)
	const phi = 0.7
	series := make([]float64, 6000)
	for i := 1; i < len(series); i++ {
		series[i] = phi*series[i-1] + r.Normal(0, 1)
	}
	m, err := ARMA{P: 1, Q: 1}.Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	am, ok := m.(*armaModel)
	if !ok {
		t.Fatalf("ARMA fit returned %T (degenerate fallback?)", m)
	}
	if math.Abs(am.phi[0]-phi) > 0.1 {
		t.Fatalf("ARMA phi = %v, want ~%v", am.phi[0], phi)
	}
}

func TestARMAOneStepAccuracy(t *testing.T) {
	// ARMA(1,1) process: x[t] = 0.6 x[t-1] + e[t] + 0.5 e[t-1].
	r := rng.New(29)
	n := 6000
	series := make([]float64, n)
	prevE := 0.0
	for i := 1; i < n; i++ {
		e := r.Normal(0, 1)
		series[i] = 0.6*series[i-1] + e + 0.5*prevE
		prevE = e
	}
	var errARMA, errMean float64
	for cut := n - 500; cut < n-1; cut += 25 {
		m, err := ARMA{P: 1, Q: 1}.Fit(series[:cut])
		if err != nil {
			t.Fatal(err)
		}
		pred := m.Forecast(1)[0]
		actual := series[cut]
		errARMA += (pred - actual) * (pred - actual)
		mean := stats.Mean(series[:cut])
		errMean += (mean - actual) * (mean - actual)
	}
	if errARMA >= errMean {
		t.Fatalf("ARMA one-step MSE %v not better than mean MSE %v", errARMA, errMean)
	}
}

func TestShortSeriesDegradeGracefully(t *testing.T) {
	short := []float64{5}
	for _, f := range ReferenceSuite() {
		m, err := f.Fit(short)
		if err != nil {
			t.Fatalf("%s failed on a single-sample series: %v", f.Name(), err)
		}
		got := m.Forecast(3)
		for _, v := range got {
			if v != 5 {
				t.Fatalf("%s forecast on singleton = %v, want 5", f.Name(), v)
			}
		}
	}
}

func TestForecastLengthProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, stepsRaw uint8) bool {
		r := rng.New(seed)
		steps := int(stepsRaw % 50)
		series := make([]float64, 30+r.Intn(100))
		for i := range series {
			series[i] = r.Uniform(0, 100)
		}
		for _, f := range ReferenceSuite() {
			m, err := f.Fit(series)
			if err != nil {
				return false
			}
			fc := m.Forecast(steps)
			if len(fc) != steps {
				return false
			}
			for _, v := range fc {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReferenceSuiteComposition(t *testing.T) {
	suite := ReferenceSuite()
	if len(suite) != 5 {
		t.Fatalf("suite size = %d, want 5 (Table 1)", len(suite))
	}
	want := []string{"AR(8)", "BM(8)", "MA(8)", "ARMA(8,8)", "LAST"}
	for i, f := range suite {
		if f.Name() != want[i] {
			t.Fatalf("suite[%d] = %s, want %s", i, f.Name(), want[i])
		}
	}
}

func TestInnovationsKnownMA1(t *testing.T) {
	// For MA(1) with theta and unit noise: γ(0) = 1+θ², γ(1) = θ.
	const theta = 0.6
	acov := []float64{1 + theta*theta, theta}
	got, ok := innovations(acov, 1)
	if !ok {
		t.Fatal("innovations failed")
	}
	// One innovations step gives θ_{1,1} = γ(1)/γ(0); iterating to
	// convergence would reach θ. Verify it is a contraction toward θ.
	if got[0] <= 0 || got[0] >= 1 {
		t.Fatalf("theta estimate = %v", got[0])
	}
	if math.Abs(got[0]-theta/(1+theta*theta)) > 1e-12 {
		t.Fatalf("first innovations estimate = %v", got[0])
	}
}
