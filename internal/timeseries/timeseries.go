// Package timeseries implements the linear time-series models of Table 1 —
// AR(p), BM(p), MA(q), ARMA(p,q) and LAST — in the style of the RPS toolkit
// the paper uses as its reference predictor. Each model is fitted to a window
// of samples and produces multi-step-ahead forecasts; the paper's Figure 7
// baseline predicts the coming window from the previous window of equal
// length.
//
// Fitting algorithms: AR uses Yule–Walker via the Levinson–Durbin recursion;
// MA uses the innovations algorithm; ARMA uses two-stage Hannan–Rissanen
// least squares; BM and LAST are closed-form.
package timeseries

import (
	"errors"
	"fmt"

	"fgcs/internal/linalg"
	"fgcs/internal/stats"
)

// Model is a fitted time-series model positioned at the end of its training
// series.
type Model interface {
	// Name identifies the model, e.g. "AR(8)".
	Name() string
	// Forecast predicts the next `steps` values following the training
	// series (multi-step-ahead: predictions feed back into the model
	// state, as RPS does).
	Forecast(steps int) []float64
}

// Fitter builds a Model from a training series.
type Fitter interface {
	// Name identifies the model family, e.g. "AR(8)".
	Name() string
	// Fit trains on the series. Implementations degrade gracefully on
	// short or degenerate series (falling back to mean/persistence
	// behavior) and only error on empty input.
	Fit(series []float64) (Model, error)
}

// ErrEmptySeries is returned when fitting on an empty series.
var ErrEmptySeries = errors.New("timeseries: empty series")

// ---------------------------------------------------------------- LAST ----

// Last is the persistence model: every forecast equals the last measurement.
type Last struct{}

// Name implements Fitter.
func (Last) Name() string { return "LAST" }

// Fit implements Fitter.
func (Last) Fit(series []float64) (Model, error) {
	if len(series) == 0 {
		return nil, ErrEmptySeries
	}
	return constModel{name: "LAST", value: series[len(series)-1]}, nil
}

type constModel struct {
	name  string
	value float64
}

func (m constModel) Name() string { return m.name }
func (m constModel) Forecast(steps int) []float64 {
	out := make([]float64, steps)
	for i := range out {
		out[i] = m.value
	}
	return out
}

// ------------------------------------------------------------------ BM ----

// BM is the windowed-mean model ("mean over the previous N values, N <= p").
type BM struct{ P int }

// Name implements Fitter.
func (b BM) Name() string { return fmt.Sprintf("BM(%d)", b.P) }

// Fit implements Fitter.
func (b BM) Fit(series []float64) (Model, error) {
	if len(series) == 0 {
		return nil, ErrEmptySeries
	}
	if b.P < 1 {
		return nil, errors.New("timeseries: BM window must be >= 1")
	}
	n := b.P
	if n > len(series) {
		n = len(series)
	}
	return constModel{name: b.Name(), value: stats.Mean(series[len(series)-n:])}, nil
}

// ------------------------------------------------------------------ AR ----

// AR is the autoregressive model of order P, fitted by Yule–Walker.
type AR struct{ P int }

// Name implements Fitter.
func (a AR) Name() string { return fmt.Sprintf("AR(%d)", a.P) }

// Fit implements Fitter.
func (a AR) Fit(series []float64) (Model, error) {
	if len(series) == 0 {
		return nil, ErrEmptySeries
	}
	if a.P < 1 {
		return nil, errors.New("timeseries: AR order must be >= 1")
	}
	p := a.P
	if p > len(series)-1 {
		p = len(series) - 1
	}
	mean := stats.Mean(series)
	if p < 1 {
		return constModel{name: a.Name(), value: mean}, nil
	}
	acov := stats.Autocovariance(series, p)
	coeffs, _, err := stats.LevinsonDurbin(acov, p)
	if err != nil {
		// Degenerate (constant) series: persistence of the mean.
		return constModel{name: a.Name(), value: mean}, nil
	}
	tail := centeredTail(series, mean, p)
	return &arModel{name: a.Name(), mean: mean, coeffs: coeffs, tail: tail}, nil
}

// centeredTail returns the last p values of the series minus the mean, most
// recent first.
func centeredTail(series []float64, mean float64, p int) []float64 {
	tail := make([]float64, p)
	for i := 0; i < p; i++ {
		tail[i] = series[len(series)-1-i] - mean
	}
	return tail
}

type arModel struct {
	name   string
	mean   float64
	coeffs []float64 // coeffs[i] multiplies x[t-1-i]
	tail   []float64 // centered recent values, most recent first
}

func (m *arModel) Name() string { return m.name }

func (m *arModel) Forecast(steps int) []float64 {
	out := make([]float64, steps)
	hist := append([]float64(nil), m.tail...)
	for s := 0; s < steps; s++ {
		pred := 0.0
		for i, c := range m.coeffs {
			pred += c * hist[i]
		}
		out[s] = pred + m.mean
		// Shift the prediction into the history.
		copy(hist[1:], hist[:len(hist)-1])
		hist[0] = pred
	}
	return out
}

// ------------------------------------------------------------------ MA ----

// MA is the moving-average model of order Q, fitted with the innovations
// algorithm.
type MA struct{ Q int }

// Name implements Fitter.
func (m MA) Name() string { return fmt.Sprintf("MA(%d)", m.Q) }

// Fit implements Fitter.
func (m MA) Fit(series []float64) (Model, error) {
	if len(series) == 0 {
		return nil, ErrEmptySeries
	}
	if m.Q < 1 {
		return nil, errors.New("timeseries: MA order must be >= 1")
	}
	q := m.Q
	if q > len(series)-1 {
		q = len(series) - 1
	}
	mean := stats.Mean(series)
	if q < 1 {
		return constModel{name: m.Name(), value: mean}, nil
	}
	acov := stats.Autocovariance(series, q)
	theta, ok := innovations(acov, q)
	if !ok {
		return constModel{name: m.Name(), value: mean}, nil
	}
	// Recover the innovation sequence from the data so forecasting can
	// use the most recent q residuals.
	resid := make([]float64, len(series))
	for t := range series {
		e := series[t] - mean
		for j := 1; j <= q && j <= t; j++ {
			e -= theta[j-1] * resid[t-j]
		}
		// Clamp runaway residuals from a non-invertible fit.
		if e > 1e6 {
			e = 1e6
		}
		if e < -1e6 {
			e = -1e6
		}
		resid[t] = e
	}
	recent := make([]float64, q)
	for i := 0; i < q; i++ {
		recent[i] = resid[len(resid)-1-i]
	}
	return &maModel{name: m.Name(), mean: mean, theta: theta, recent: recent}, nil
}

// innovations runs the innovations algorithm on the autocovariance sequence
// and returns the MA(q) coefficients θ_1..θ_q (from θ_{q,1..q}).
func innovations(acov []float64, q int) ([]float64, bool) {
	if acov[0] <= 0 {
		return nil, false
	}
	v := make([]float64, q+1)
	theta := make([][]float64, q+1) // theta[n][j] = θ_{n,j}, j = 1..n
	v[0] = acov[0]
	for n := 1; n <= q; n++ {
		theta[n] = make([]float64, n+1)
		for k := 0; k < n; k++ {
			acc := acov[n-k]
			for j := 0; j < k; j++ {
				acc -= theta[k][k-j] * theta[n][n-j] * v[j]
			}
			if v[k] == 0 {
				return nil, false
			}
			theta[n][n-k] = acc / v[k]
		}
		vn := acov[0]
		for j := 1; j <= n; j++ {
			vn -= theta[n][j] * theta[n][j] * v[n-j]
		}
		if vn <= 0 {
			return nil, false
		}
		v[n] = vn
	}
	out := make([]float64, q)
	copy(out, theta[q][1:])
	return out, true
}

type maModel struct {
	name   string
	mean   float64
	theta  []float64 // theta[i] multiplies e[t-1-i]
	recent []float64 // recent residuals, most recent first
}

func (m *maModel) Name() string { return m.name }

func (m *maModel) Forecast(steps int) []float64 {
	out := make([]float64, steps)
	for s := 0; s < steps; s++ {
		pred := 0.0
		for i, th := range m.theta {
			// Future innovations have zero expectation; only residuals
			// observed before the forecast origin contribute.
			idx := s - 1 - i // position relative to origin; negative = observed
			if idx < 0 {
				lag := -idx - 1 // 0 = most recent observed residual
				if lag < len(m.recent) {
					pred += th * m.recent[lag]
				}
			}
		}
		out[s] = pred + m.mean
	}
	return out
}

// ---------------------------------------------------------------- ARMA ----

// ARMA is the mixed model of orders (P, Q), fitted by the two-stage
// Hannan–Rissanen procedure: a long AR fit produces residual estimates, then
// least squares regresses the series on its own lags and the residual lags.
type ARMA struct{ P, Q int }

// Name implements Fitter.
func (a ARMA) Name() string { return fmt.Sprintf("ARMA(%d,%d)", a.P, a.Q) }

// Fit implements Fitter.
func (a ARMA) Fit(series []float64) (Model, error) {
	if len(series) == 0 {
		return nil, ErrEmptySeries
	}
	if a.P < 1 || a.Q < 1 {
		return nil, errors.New("timeseries: ARMA orders must be >= 1")
	}
	mean := stats.Mean(series)
	n := len(series)
	// Stage 1: long AR for residuals.
	longP := a.P + a.Q + 4
	if longP > n/3 {
		longP = n / 3
	}
	if longP < 1 {
		return constModel{name: a.Name(), value: mean}, nil
	}
	acov := stats.Autocovariance(series, longP)
	arCoef, _, err := stats.LevinsonDurbin(acov, longP)
	if err != nil {
		return constModel{name: a.Name(), value: mean}, nil
	}
	resid := make([]float64, n)
	for t := longP; t < n; t++ {
		pred := 0.0
		for i, c := range arCoef {
			pred += c * (series[t-1-i] - mean)
		}
		resid[t] = (series[t] - mean) - pred
	}
	// Stage 2: regress x_t - mean on p lags of x and q lags of residuals.
	start := longP + a.Q
	if start >= n {
		return constModel{name: a.Name(), value: mean}, nil
	}
	rows := n - start
	cols := a.P + a.Q
	design := linalg.NewMatrix(rows, cols)
	target := make([]float64, rows)
	for t := start; t < n; t++ {
		r := t - start
		for i := 0; i < a.P; i++ {
			design.Set(r, i, series[t-1-i]-mean)
		}
		for j := 0; j < a.Q; j++ {
			design.Set(r, a.P+j, resid[t-1-j])
		}
		target[r] = series[t] - mean
	}
	coef, err := linalg.LeastSquares(design, target, 1e-8)
	if err != nil {
		return constModel{name: a.Name(), value: mean}, nil
	}
	phi := coef[:a.P]
	theta := coef[a.P:]
	tail := centeredTail(series, mean, a.P)
	recent := make([]float64, a.Q)
	for i := 0; i < a.Q; i++ {
		recent[i] = resid[n-1-i]
	}
	return &armaModel{name: a.Name(), mean: mean, phi: phi, theta: theta, tail: tail, recent: recent}, nil
}

type armaModel struct {
	name   string
	mean   float64
	phi    []float64
	theta  []float64
	tail   []float64 // centered recent observations, most recent first
	recent []float64 // recent residuals, most recent first
}

func (m *armaModel) Name() string { return m.name }

func (m *armaModel) Forecast(steps int) []float64 {
	out := make([]float64, steps)
	hist := append([]float64(nil), m.tail...)
	for s := 0; s < steps; s++ {
		pred := 0.0
		for i, c := range m.phi {
			pred += c * hist[i]
		}
		for i, th := range m.theta {
			idx := s - 1 - i
			if idx < 0 {
				lag := -idx - 1
				if lag < len(m.recent) {
					pred += th * m.recent[lag]
				}
			}
		}
		out[s] = pred + m.mean
		copy(hist[1:], hist[:len(hist)-1])
		hist[0] = pred
	}
	return out
}

// ReferenceSuite returns the Table 1 model suite with the parameters used in
// the paper's Figure 7 comparison (p = 8, q = 8).
func ReferenceSuite() []Fitter {
	return []Fitter{AR{P: 8}, BM{P: 8}, MA{Q: 8}, ARMA{P: 8, Q: 8}, Last{}}
}
